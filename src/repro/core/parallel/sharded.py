"""The sharded parallel runtime: one scheduler per worker, split by agentid.

:class:`ShardedScheduler` partitions the enterprise stream by the (stable)
hash of each event's ``agentid`` and runs one full
:class:`~repro.core.scheduler.concurrent.ConcurrentQueryScheduler` per
shard, so many-query workloads scale across cores instead of being capped
by the single-process design.  Queries are routed by the static
shardability analysis (:mod:`repro.core.parallel.shardability`): host-local
queries are registered on every shard (a shard that never sees a query's
host simply never matches it), while queries that aggregate across hosts
fall back to a single-shard lane that observes the full stream.

Three interchangeable backends execute the shards:

* ``serial`` — shards run inline in the calling thread, in shard order.
  Fully deterministic, no threads or processes; the backend equivalence
  tests and Windows-constrained environments use this.
* ``thread`` — one :class:`ThreadShard` per shard, fed through bounded
  queues.  Schedulers share no state, so no locking is needed; the GIL
  limits the speedup, but the feeding/backpressure behaviour matches the
  process backend.
* ``process`` — one worker process per shard (``multiprocessing``).  Each
  worker compiles its own copy of the queries from source (compiled
  closures do not cross process boundaries), consumes event batches from a
  bounded queue, and ships its alerts and stats back at end of stream.

Shards are fed in batches (the batch ingestion path,
``process_events``) to amortize dispatch and serialization overhead.  After
the stream drains, per-shard alerts are merged into a single
deterministically-ordered stream — sorted by timestamp, query name, window
and payload — and per-shard ``SchedulerStats`` are merged into one
aggregate, so callers observe the same interface as the single-process
scheduler.

**Mid-stream work stealing.**  With ``rebalance_interval`` set, the router
runs *rebalance epochs*: every ``interval`` events it collects one
:class:`~repro.core.scheduler.concurrent.ShardLoadReport` per shard over a
per-backend control channel (inline for ``serial``, through the feed queue
for ``thread``/``process``) and asks the
:class:`~repro.core.parallel.stealing.WorkStealingBalancer` whether load
has skewed past the configured ratio.  Migrations run one of two
protocols, chosen statically per query set
(:func:`~repro.core.parallel.shardability.analyze_steal_safety`):

* **aligned** — every unpinned query tolerates a window-aligned cut:
  the victim's events at or past the cut are held in a handoff buffer,
  and only once the donor shard confirms (over the control channel) that
  its open windows — all of which end at or before the cut — have closed
  is the buffer flushed to the thief and the route switched.  Nothing is
  copied.
* **transfer** — at least one query keeps per-host state that spans
  every cut (overlapping sliding windows, fractional hops, ``state[k]``
  histories, multi-event sequences, stateful ``distinct``): both lanes
  pause their intake, the donor *exports* the victim's state slice
  through the snapshot codecs (:mod:`repro.core.snapshot`), the thief
  *imports* it, and the held events are merged with the paused backlog
  in journal order before both lanes resume.

Pinned agentids are never stolen (their queries live only on the pin's
shard), single-shard-lane queries observe the full stream regardless of
routing, and a hard-vetoed unpinned query (count windows, invariants,
clustering) disables stealing for the whole lane, so the merged alert
stream stays identical to single-process execution.

**Checkpointing.**  With a ``checkpoint_store`` configured, the router
additionally takes parent-coordinated checkpoints: at due batch
boundaries it flushes its routing buffers, collects one state snapshot
per shard over the same control channel, and persists them together with
the single-lane state, the route overrides and the global stream cursor;
:meth:`ShardedScheduler.restore_state` resumes a crashed run from the
latest checkpoint with exactly-once alert re-emission.

**Supervision.**  With ``supervision`` enabled, a :class:`_ShardSupervisor`
watches the lanes during the run: liveness probes (``("ping", seq)``
control messages answered in feed order), per-send deadlines and a
per-batch liveness scan detect dead and hung workers, and the supervisor
recovers *in-run* instead of aborting — it rebuilds the lane from the
last per-shard checkpoint slice and replays the event/control backlog it
journals between checkpoints, or, when no checkpoint exists, migrates
the dead shard's agentids to the surviving lanes through the snapshot
transfer codecs and retires the lane.  Either path reproduces the lost
lane's alerts exactly (the restored alert ledger covers everything up to
the checkpoint; the replay regenerates the rest), so the merged stream
matches a fault-free run.  See :class:`SupervisionPolicy` for the knobs.
"""

from __future__ import annotations

import itertools
import multiprocessing
import queue
import threading
import time
import zlib
from collections import Counter
from dataclasses import dataclass
from typing import (Any, Callable, Dict, Iterable, List, Mapping, Optional,
                    Sequence, Tuple, Union)

from repro.core.engine.alerts import Alert, AlertSink
from repro.core.language import ast, parse_query
from repro.core.parallel.shardability import (
    ShardabilityReport,
    analyze_shardability,
)
from repro.core.parallel.stealing import (
    DEFAULT_REBALANCE_RATIO,
    StealEligibility,
    WorkStealingBalancer,
    steal_eligibility,
)
from repro.core.parallel.supervision import (
    DEFAULT_BACKOFF,
    Backoff,
    RecoveryRecord,
    ShardFailure,
    SupervisionPolicy,
)
from repro.core.expr.values import compare_values
from repro.core.scheduler.compatibility import compatibility_signature
from repro.core.scheduler.concurrent import (
    ConcurrentQueryScheduler,
    SchedulerStats,
    ShardLoadReport,
)
from repro.events.event import Event
from repro.events.stream import iter_batches
from repro.obs import MetricRegistry, merge_snapshots

#: Default number of events per feed batch.
DEFAULT_BATCH_SIZE = 256

#: Default replay-prefix length (events) observed by ``shard_map="auto"``
#: before greedily bin-packing agentids onto shards.
DEFAULT_AUTO_PREFIX = 32768

#: Bound on in-flight batches per shard queue (backpressure for the
#: thread/process backends).
_QUEUE_DEPTH = 8

_BACKENDS = ("serial", "thread", "process")


def shard_index(agentid: str, shard_count: int) -> int:
    """Map a host to its shard with a stable, process-independent hash.

    ``zlib.crc32`` is used instead of ``hash()`` because the latter is
    randomized per interpreter (``PYTHONHASHSEED``), which would make shard
    assignment — and therefore per-shard stats — differ between runs.  The
    agentid is case-folded first: SAQL equality is case-insensitive, so a
    host-pinned query matches agentids differing only in case, and those
    events must land on the pin's shard.
    """
    return zlib.crc32(agentid.casefold().encode("utf-8")) % shard_count


def merge_stats(per_shard: Sequence[SchedulerStats],
                single_lane: Optional[SchedulerStats] = None
                ) -> SchedulerStats:
    """Merge per-shard statistics into one aggregate ``SchedulerStats``.

    Work counters (alerts, pattern evaluations, buffered events) are
    summed: they measure work actually performed and memory actually held,
    including the per-shard replicas of each group's shared buffer.
    ``queries`` and ``groups`` count *logical* queries/groups: the maximum
    across shards is taken (an exact figure when every shard registers the
    same query set, an upper bound when pinned queries are routed to their
    owner shard only — :class:`ShardedScheduler` overwrites both with the
    exact registration-time counts after a run) and the single-shard
    lane's are added.  ``events_ingested`` sums per-lane ingestion; the
    sharded scheduler overwrites it with its own once-per-event count
    after a run.

    The per-lane ``peak_buffered_events``/``peak_buffered_matches``
    figures occur at *different stream positions*, so their sum — each
    lane counted exactly once, the single lane included — is only an
    upper bound on the true simultaneous peak.  That sum is recorded in
    the explicitly-named ``peak_buffered_events_bound`` /
    ``peak_buffered_matches_bound`` fields.  ``peak_buffered_events`` /
    ``peak_buffered_matches`` start out equal to the bound (the process
    backend, whose shard buffers live in other processes, can do no
    better); the serial/thread backends overwrite them with a genuine
    concurrent peak sampled across all lanes at batch boundaries.
    """
    merged = SchedulerStats()
    for stats in per_shard:
        merged.events_ingested += stats.events_ingested
        merged.alerts += stats.alerts
        merged.pattern_evaluations += stats.pattern_evaluations
        merged.pattern_evaluations_saved += stats.pattern_evaluations_saved
        merged.buffered_events += stats.buffered_events
        merged.peak_buffered_events += stats.peak_buffered_events
        merged.buffered_matches += stats.buffered_matches
        merged.peak_buffered_matches += stats.peak_buffered_matches
        merged.predicate_evaluations += stats.predicate_evaluations
        merged.predicate_evaluations_saved += (
            stats.predicate_evaluations_saved)
        merged.column_blocks_built += stats.column_blocks_built
        _merge_predicate_sharing(merged.predicate_sharing,
                                 stats.predicate_sharing)
        for name, count in stats.quarantined.items():
            merged.quarantined[name] = max(merged.quarantined.get(name, 0),
                                           count)
    if per_shard:
        merged.queries = max(stats.queries for stats in per_shard)
        merged.groups = max(stats.groups for stats in per_shard)
    if single_lane is not None:
        merged.events_ingested += single_lane.events_ingested
        merged.alerts += single_lane.alerts
        merged.pattern_evaluations += single_lane.pattern_evaluations
        merged.pattern_evaluations_saved += (
            single_lane.pattern_evaluations_saved)
        merged.buffered_events += single_lane.buffered_events
        merged.peak_buffered_events += single_lane.peak_buffered_events
        merged.buffered_matches += single_lane.buffered_matches
        merged.peak_buffered_matches += single_lane.peak_buffered_matches
        merged.predicate_evaluations += single_lane.predicate_evaluations
        merged.predicate_evaluations_saved += (
            single_lane.predicate_evaluations_saved)
        merged.column_blocks_built += single_lane.column_blocks_built
        _merge_predicate_sharing(merged.predicate_sharing,
                                 single_lane.predicate_sharing)
        for name, count in single_lane.quarantined.items():
            merged.quarantined[name] = max(merged.quarantined.get(name, 0),
                                           count)
        merged.queries += single_lane.queries
        merged.groups += single_lane.groups
    merged.distinct_predicates = len(merged.predicate_sharing)
    merged.peak_buffered_events_bound = merged.peak_buffered_events
    merged.peak_buffered_matches_bound = merged.peak_buffered_matches
    # One coherent metrics view across every lane: counters summed,
    # gauges maxed/lasted (per-shard-labeled series keep their own
    # identity), histogram buckets added — the fixed boundaries make the
    # merge exact (see repro.obs).  None when every lane ran disabled.
    contributions = [stats.metrics_snapshot for stats in per_shard
                     if stats.metrics_snapshot is not None]
    if single_lane is not None and single_lane.metrics_snapshot is not None:
        contributions.append(single_lane.metrics_snapshot)
    merged.metrics_snapshot = (merge_snapshots(contributions)
                               if contributions else None)
    return merged


def _merge_predicate_sharing(into: Dict[str, Dict[str, int]],
                             contribution: Dict[str, Dict[str, int]]) -> None:
    """Fold one lane's predicate-sharing report into the aggregate.

    Row counters sum across lanes (each lane scanned its own column
    cells); ``subscribers`` counts the *logical* query slots behind one
    canonical predicate, so the maximum across lanes is taken — pinned
    routing gives each shard a subset of the subscribing queries, making
    the per-lane figures subsets of the registration-time count.
    """
    for label, entry in contribution.items():
        merged = into.setdefault(label, {"subscribers": 0,
                                         "rows_evaluated": 0,
                                         "rows_selected": 0})
        merged["subscribers"] = max(merged["subscribers"],
                                    entry["subscribers"])
        merged["rows_evaluated"] += entry["rows_evaluated"]
        merged["rows_selected"] += entry["rows_selected"]


def _alert_sort_key(alert: Alert) -> Tuple:
    """Total order over alerts that does not depend on shard interleaving."""
    return (
        alert.timestamp,
        alert.query_name,
        alert.window_start if alert.window_start is not None else -1.0,
        repr(alert.group_key),
        repr(alert.data),
        alert.agentid,
    )


def _build_scheduler(queries: Sequence[Tuple[str, Union[str, ast.Query]]],
                     enable_sharing: bool,
                     track_agent_load: bool = False,
                     columnar: bool = True,
                     quarantine_errors: Optional[int] = None,
                     metrics: bool = True,
                     shard_id: int = 0) -> ConcurrentQueryScheduler:
    # Each lane owns its registry (no cross-lane locking; registries are
    # not picklable, so process workers build theirs worker-side from the
    # ``metrics`` bool).  The shard id labels the per-shard series
    # (watermark lag); everything else merges across lanes by name.
    scheduler = ConcurrentQueryScheduler(enable_sharing=enable_sharing,
                                         track_agent_load=track_agent_load,
                                         columnar=columnar,
                                         quarantine_errors=quarantine_errors,
                                         metrics=MetricRegistry(
                                             enabled=metrics),
                                         shard_id=shard_id)
    for name, source in queries:
        scheduler.add_query(source, name=name)
    return scheduler


def _answer_control(scheduler: ConcurrentQueryScheduler,
                    message: Tuple) -> Tuple:
    """Answer one control message against a shard scheduler.

    Shared by all three backends so the protocol cannot drift:

    * ``("load", epoch)`` returns that epoch's :class:`ShardLoadReport`;
    * ``("drain", agentid, cut)`` reports whether the shard's open
      windows have drained through the cut (aligned-mode stealing, see
      :meth:`ConcurrentQueryScheduler.drained_through`);
    * ``("export", agentid_key, cut)`` extracts and returns the victim's
      state slice (transfer-mode stealing); because control messages are
      processed in feed order, every previously routed victim event is
      already folded in when the export runs;
    * ``("import", agentid_key, payload)`` merges a donor's exported
      slice (thief side) and acknowledges;
    * ``("snapshot", sequence)`` returns the scheduler's full state
      snapshot (parent-coordinated checkpointing);
    * ``("metrics", sequence)`` returns the scheduler's live metrics
      registry snapshot (mid-run scrape piggybacked on the control
      round — answered at a batch boundary, in feed order, like every
      other control message);
    * ``("ping", sequence)`` echoes the sequence — a liveness probe that,
      because control messages are processed in feed order, also bounds
      how far the shard lags behind its queue (the supervisor's hang
      detector keys on unanswered probes).
    """
    kind = message[0]
    if kind == "ping":
        return ("ping", message[1])
    if kind == "load":
        return ("load", message[1], scheduler.take_load_report())
    if kind == "drain":
        cut = message[2]
        # Both halves of the safe point: the shard must have *seen* the
        # stream past the cut (otherwise a later pre-cut match could
        # still open a window here) and hold no open window ending by
        # it.  See ConcurrentQueryScheduler.drained_through.
        drained = (scheduler.load_watermark >= cut
                   and scheduler.drained_through(cut))
        return ("drain", message[1], cut, drained)
    if kind == "export":
        return ("export", message[1], message[2],
                scheduler.extract_agent_state(message[1]))
    if kind == "import":
        scheduler.import_agent_state(message[2])
        return ("import", message[1], True)
    if kind == "snapshot":
        return ("snapshot", message[1], scheduler.export_state())
    if kind == "metrics":
        return ("metrics", message[1], scheduler.metrics_snapshot())
    raise ValueError(f"unknown shard control message {message!r}")


# ---------------------------------------------------------------------------
# Backends
# ---------------------------------------------------------------------------

class SerialShard:
    """In-process shard executed inline (deterministic test backend)."""

    def __init__(self, queries, enable_sharing: bool,
                 track_agent_load: bool = False, index: int = 0,
                 restore=None, columnar: bool = True,
                 quarantine_errors: Optional[int] = None,
                 fault_plan=None, metrics: bool = True):
        self.index = index
        self._scheduler = _build_scheduler(queries, enable_sharing,
                                           track_agent_load, columnar,
                                           quarantine_errors,
                                           metrics=metrics, shard_id=index)
        self._alerts: List[Alert] = []
        if restore is not None:
            # Seed the output with the restored alert ledger so the
            # merged result equals the uninterrupted run's alerts.
            self._scheduler.restore_state(restore)
            self._alerts.extend(self._scheduler.emitted_alerts())
        if fault_plan is not None:
            fault_plan.install(self._scheduler, index, in_worker=False)
        self._responses: List[Tuple] = []

    def feed(self, batch: List[Event],
             timeout: Optional[float] = None) -> None:
        self._alerts.extend(self._scheduler.process_events(batch))

    def request_control(self, message: Tuple,
                        timeout: Optional[float] = None) -> None:
        """Answer a control message (inline, so immediately)."""
        self._responses.append(_answer_control(self._scheduler, message))

    def is_alive(self) -> bool:
        """Inline execution cannot die silently; failures raise in feed."""
        return True

    def poll_control(self) -> List[Tuple]:
        """Return (and clear) the pending control responses."""
        responses, self._responses = self._responses, []
        return responses

    def buffer_sample(self) -> Tuple[int, int]:
        """Current (buffered events, buffered matches) retention snapshot."""
        stats = self._scheduler.stats
        return stats.buffered_events, stats.buffered_matches

    def finish(self, timeout: Optional[float] = None
               ) -> Tuple[List[Alert], SchedulerStats]:
        self._alerts.extend(self._scheduler.finish())
        return self._alerts, self._scheduler.stats

    def close(self) -> None:
        """Nothing to release: the shard runs inline."""

    def __enter__(self) -> "SerialShard":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class ThreadShard:
    """In-process shard executed on its own thread.

    Each shard owns its scheduler outright, so no locking is required; the
    bounded queue provides the same backpressure as the process backend.
    Queue items are batches (lists), control messages (tuples, answered
    onto a response queue) or the ``None`` stop sentinel.
    """

    def __init__(self, queries, enable_sharing: bool,
                 track_agent_load: bool = False, index: int = 0,
                 restore=None, columnar: bool = True,
                 quarantine_errors: Optional[int] = None,
                 fault_plan=None, metrics: bool = True):
        self.index = index
        self._scheduler = _build_scheduler(queries, enable_sharing,
                                           track_agent_load, columnar,
                                           quarantine_errors,
                                           metrics=metrics, shard_id=index)
        self._alerts: List[Alert] = []
        if restore is not None:
            # Restored before the worker thread starts consuming.
            self._scheduler.restore_state(restore)
            self._alerts.extend(self._scheduler.emitted_alerts())
        if fault_plan is not None:
            fault_plan.install(self._scheduler, index, in_worker=False)
        self._queue: "queue.Queue[Optional[Union[List[Event], Tuple]]]" = (
            queue.Queue(maxsize=_QUEUE_DEPTH))
        self._responses: "queue.Queue[Tuple]" = queue.Queue()
        self._error: Optional[BaseException] = None
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name=f"saql-shard-{index}")
        self._thread.start()

    def _run(self) -> None:
        try:
            while True:
                item = self._queue.get()
                if item is None:
                    return
                if isinstance(item, tuple):
                    self._responses.put(
                        _answer_control(self._scheduler, item))
                    continue
                self._alerts.extend(self._scheduler.process_events(item))
        except BaseException as error:  # surfaced by feed()/finish()
            self._error = error

    def _put(self, item: Optional[Union[List[Event], Tuple]],
             timeout: Optional[float] = None) -> None:
        # A blocking put against a dead consumer would hang the stream
        # loop forever once the bounded queue fills, so surface the
        # thread's failure instead of waiting on it.  With a timeout a
        # *live but unresponsive* worker (blocked mid-batch) is reported
        # as hung instead of stalling the parent indefinitely.
        waiter = DEFAULT_BACKOFF.waiter(timeout, seed=self.index)
        while True:
            try:
                self._queue.put(item, timeout=waiter.interval())
                return
            except queue.Full:
                if self._error is not None:
                    raise self._error
                if not self._thread.is_alive():
                    raise ShardFailure(self.index, "dead",
                                       "shard thread exited mid-stream")
                if waiter.expired:
                    raise ShardFailure(
                        self.index, "hung",
                        f"shard {self.index} thread stopped consuming its "
                        f"queue (blocked for over {timeout:.1f}s)")

    def feed(self, batch: List[Event],
             timeout: Optional[float] = None) -> None:
        if self._error is not None:
            raise self._error
        self._put(batch, timeout)

    def request_control(self, message: Tuple,
                        timeout: Optional[float] = None) -> None:
        """Enqueue a control message; answered in feed order."""
        self._put(message, timeout)

    def is_alive(self) -> bool:
        return self._thread.is_alive()

    def poll_control(self) -> List[Tuple]:
        """Return the control responses posted so far (non-blocking)."""
        responses: List[Tuple] = []
        while True:
            try:
                responses.append(self._responses.get_nowait())
            except queue.Empty:
                return responses

    def buffer_sample(self) -> Tuple[int, int]:
        """Current (buffered events, buffered matches) retention snapshot.

        Read across threads without locking: both counters are plain ints
        maintained by the worker, so this is a benign racy sample of the
        shard's simultaneous retention.
        """
        stats = self._scheduler.stats
        return stats.buffered_events, stats.buffered_matches

    def finish(self, timeout: Optional[float] = None
               ) -> Tuple[List[Alert], SchedulerStats]:
        if self._thread.is_alive():
            self._put(None, timeout)
        self._thread.join(timeout)
        if self._thread.is_alive():
            raise ShardFailure(
                self.index, "hung",
                f"shard {self.index} thread did not finish its stream "
                f"within {timeout:.1f}s")
        if self._error is not None:
            raise self._error
        self._alerts.extend(self._scheduler.finish())
        return self._alerts, self._scheduler.stats

    def abandon(self) -> None:
        """Drop a hung worker without waiting for it (supervised teardown).

        The daemon thread may be blocked mid-batch; joining it would
        stall the supervisor for the length of the hang, so the sentinel
        is posted best-effort and the thread is simply abandoned — its
        scheduler and alert list die with this object's references.
        """
        try:
            self._queue.put_nowait(None)
        except queue.Full:
            pass

    def close(self) -> None:
        """Stop the worker thread without requiring a clean finish.

        Safe after errors (the worker may be dead or mid-batch) and
        idempotent after :meth:`finish`; never raises, so cleanup in a
        ``finally`` cannot mask the original failure.
        """
        while self._thread.is_alive():
            try:
                self._queue.put(None, timeout=0.1)
                break
            except queue.Full:
                continue  # a live worker is draining; a dead one exits the loop
        self._thread.join(timeout=5.0)

    def __enter__(self) -> "ThreadShard":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _process_shard_main(index: int,
                        queries: Sequence[Tuple[str, Union[str, ast.Query]]],
                        enable_sharing: bool,
                        track_agent_load: bool,
                        in_queue: "multiprocessing.Queue",
                        out_queue: "multiprocessing.Queue",
                        restore=None, columnar: bool = True,
                        generation: int = 0,
                        quarantine_errors: Optional[int] = None,
                        fault_plan=None, metrics: bool = True) -> None:
    """Worker entry point: compile the queries, drain batches, report back.

    The out queue carries tagged tuples: ``("ctrl", index, generation,
    response)`` for control-message answers mid-stream, ``("done", index,
    generation, alerts, stats, error)`` exactly once at the end.  The
    ``generation`` stamp lets a supervised parent discard late output
    from a worker it already replaced.  ``restore`` is an optional
    scheduler snapshot (plain JSON-friendly dicts, so it crosses the
    process boundary without pickling engine objects) applied before any
    batch is consumed.
    """
    try:
        scheduler = _build_scheduler(queries, enable_sharing,
                                     track_agent_load, columnar,
                                     quarantine_errors,
                                     metrics=metrics, shard_id=index)
        alerts: List[Alert] = []
        if restore is not None:
            scheduler.restore_state(restore)
            alerts.extend(scheduler.emitted_alerts())
        if fault_plan is not None:
            fault_plan.install(scheduler, index, in_worker=True)
        while True:
            item = in_queue.get()
            if item is None:
                break
            if isinstance(item, tuple):
                out_queue.put(("ctrl", index, generation,
                               _answer_control(scheduler, item)))
                continue
            alerts.extend(scheduler.process_events(item))
        alerts.extend(scheduler.finish())
        out_queue.put(("done", index, generation, alerts, scheduler.stats,
                       None))
    except BaseException as error:
        out_queue.put(("done", index, generation, [], None,
                       f"{type(error).__name__}: {error}"))


class ProcessShard:
    """Shard executed in a worker process, fed through a bounded queue."""

    def __init__(self, index: int, queries, enable_sharing: bool,
                 context, out_queue, track_agent_load: bool = False,
                 restore=None, columnar: bool = True, generation: int = 0,
                 quarantine_errors: Optional[int] = None, fault_plan=None,
                 metrics: bool = True):
        self.index = index
        self.generation = generation
        self._in_queue = context.Queue(maxsize=_QUEUE_DEPTH)
        self._out_queue = out_queue
        self._process = context.Process(
            target=_process_shard_main,
            args=(index, list(queries), enable_sharing, track_agent_load,
                  self._in_queue, out_queue, restore, columnar, generation,
                  quarantine_errors, fault_plan, metrics),
            daemon=True,
            name=f"saql-shard-{index}")
        self._process.start()

    def _put(self, item, timeout: Optional[float] = None) -> None:
        # Same liveness rule as ThreadShard: a worker that died mid-stream
        # (its error tuple sits on the out queue) must not deadlock the
        # parent's feed loop once the bounded in-queue fills; a *live*
        # worker that stopped consuming (SIGSTOP, a wedged batch) is
        # reported as hung once the supervised timeout passes.
        waiter = DEFAULT_BACKOFF.waiter(timeout, seed=self.index)
        while True:
            try:
                self._in_queue.put(item, timeout=waiter.interval())
                return
            except queue.Full:
                if not self._process.is_alive():
                    raise ShardFailure(
                        self.index, "dead",
                        f"shard {self.index} worker exited mid-stream")
                if waiter.expired:
                    raise ShardFailure(
                        self.index, "hung",
                        f"shard {self.index} worker stopped consuming its "
                        f"queue (blocked for over {timeout:.1f}s)")

    def feed(self, batch: List[Event],
             timeout: Optional[float] = None) -> None:
        self._put(batch, timeout)

    def request_control(self, message: Tuple,
                        timeout: Optional[float] = None) -> None:
        """Enqueue a control message; the answer arrives on the out queue."""
        self._put(message, timeout)

    def close(self) -> None:
        # The sentinel must actually arrive: silently dropping it on a
        # transiently full queue would leave the worker blocked on get()
        # and the parent blocked on the result collection, forever.
        while self._process.is_alive():
            try:
                self._in_queue.put(None, timeout=0.1)
                return
            except queue.Full:
                continue

    def shutdown(self) -> None:
        """Force the worker down (abort path: its result will not be read).

        A worker that already finished its stream blocks on putting its
        result tuple until the parent reads it; when an error aborts the
        run before collection, that put would otherwise pin the process
        until interpreter exit.  Termination is safe here precisely
        because the result is abandoned.
        """
        if self._process.is_alive():
            self._process.terminate()
        self._process.join(timeout=5.0)

    def kill(self) -> None:
        """Hard-kill the worker (supervised teardown of a dead/hung shard).

        SIGKILL, not SIGTERM: a SIGSTOPped worker leaves SIGTERM pending
        (delivered only on SIGCONT, i.e. never), while SIGKILL takes a
        stopped process down immediately.
        """
        if self._process.is_alive():
            self._process.kill()
        self._process.join(timeout=5.0)
        # The in-queue's feeder thread may be blocked writing into a pipe
        # nobody will ever read again; without cancel_join_thread the
        # queue's exit-time finalizer would join that thread forever.
        self._in_queue.cancel_join_thread()
        self._in_queue.close()

    def is_alive(self) -> bool:
        return self._process.is_alive()

    def join(self) -> None:
        self._process.join()

    def __enter__(self) -> "ProcessShard":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()


# ---------------------------------------------------------------------------
# Mid-stream rebalancing (work stealing)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class MigrationRecord:
    """One completed agentid migration, for stats and benchmarks."""

    agentid: str
    source: int
    target: int
    cut: float
    #: Events held in the handoff buffer until the donor drained.
    events_held: int
    #: False when the drain never confirmed mid-stream and the buffer was
    #: flushed at end of stream instead (same alerts, later handoff).
    completed_mid_stream: bool
    #: True when the migration moved the victim's state slice through the
    #: snapshot codecs (transfer-mode lanes: sliding windows, state
    #: histories, sequences, ``distinct``) instead of draining.
    transferred: bool = False


class _ActiveMigration:
    """One in-flight steal: routing state between decision and handoff."""

    __slots__ = ("agentid", "key", "source", "target", "cut", "buffer",
                 "drain_pending", "transfer", "exported")

    def __init__(self, agentid: str, key: str, source: int, target: int,
                 cut: float, transfer: bool = False):
        self.agentid = agentid
        self.key = key                      # casefolded routing key
        self.source = source
        self.target = target
        self.cut = cut
        self.buffer: List[Event] = []       # the handoff buffer
        self.drain_pending = False          # a drain/export request in flight
        self.transfer = transfer            # state-transfer protocol?
        self.exported = False               # transfer: import already sent?


class _StealingCoordinator:
    """Drives rebalance epochs and migrations for one ``execute`` run.

    The feeding loop calls :meth:`maybe_hold` per event (capturing a
    migrating victim's events into its handoff buffer) and
    :meth:`after_batch` per batch (epoch accounting, control-channel I/O,
    balancer planning, handoff confirmation and flushing).  Backend
    differences are abstracted behind callables: ``send(position,
    message)`` posts a control message to a shard, ``poll()`` returns the
    responses that have arrived, ``flush(position, events)`` delivers a
    handoff buffer to the thief *after* the thief's pending normal events
    (so the thief's own groups never see a watermark jump ahead of their
    earlier events), and ``flush_pending(position)`` pushes the parent's
    routing buffer for one shard down its feed channel.

    Two migration protocols, selected by the lane's
    :class:`~repro.core.parallel.stealing.StealEligibility`:

    * **aligned** — the cut is window-aligned; only the victim's events
      at or past the cut are held, and the handoff completes once the
      donor confirms (drain messages) that its open windows drained
      through the cut.  No state moves.
    * **transfer** — every victim event is held from the moment the
      migration is planned, and *both* lanes of the migration pause their
      intake (events keep accumulating in the parent's routing buffers),
      freezing the donor's and the thief's watermarks at the planning
      point so nothing closes a window mid-handoff.  The donor is asked
      to *export* the victim's state slice (processed, like all control
      messages, after every previously routed victim event), the slice
      is sent to the thief as an *import*, and once every migration of
      the group has exported, the held events — merged across victims in
      journal order — flow to the thief ahead of the paused backlog.
      Sliding windows, state histories, partial sequences and distinct
      seen-sets migrate intact, and no held event can land behind the
      thief's frontier.
    """

    def __init__(self, shard_count: int, interval: int,
                 balancer: WorkStealingBalancer,
                 eligibility: StealEligibility,
                 stealable, send, poll, flush,
                 resolve_route, purge_route,
                 route_overrides: Dict[str, int],
                 flush_pending=None, feed_events=None,
                 drain_pending=None):
        self._shard_count = shard_count
        self._interval = interval
        self._balancer = balancer
        self._eligibility = eligibility
        self._transfer = eligibility.mode == "transfer"
        self._stealable = stealable
        self._send = send
        self._poll = poll
        self._flush = flush
        self._flush_pending = flush_pending
        self._feed_events = feed_events
        self._drain_pending = drain_pending
        self._resolve_route = resolve_route
        self._purge_route = purge_route
        self._overrides = route_overrides
        self._events_since_epoch = 0
        self._watermark = float("-inf")
        self._epoch = 0
        self._awaiting_reports: set = set()
        self._reports: Dict[int, ShardLoadReport] = {}
        self._migrating: Dict[str, _ActiveMigration] = {}
        #: position -> pause refcount (transfer mode: a migration pauses
        #: both its lanes; the parent buffers their events meanwhile).
        self._paused: Counter = Counter()
        #: End-of-stream flag: no new migrations are planned during
        #: finalize (their exports could never be requested in time).
        self._closing = False
        self.records: List[MigrationRecord] = []

    # -- feeding-loop hooks -------------------------------------------------

    def maybe_hold(self, event: Event) -> bool:
        """Capture a migrating victim's event; True when held.

        Aligned mode holds only events at or past the cut (pre-cut
        stragglers keep flowing to the donor, whose windows cover
        everything below the cut).  Transfer mode holds *everything*: the
        export must be the last word on the victim's state, so no victim
        event may reach the donor after the export request is enqueued.
        """
        migrating = self._migrating
        if not migrating:
            return False
        migration = migrating.get(event.agentid.casefold())
        if migration is None:
            return False
        if not migration.transfer and event.timestamp < migration.cut:
            return False
        migration.buffer.append(event)
        return True

    def after_batch(self, batch: Sequence[Event]) -> None:
        """Advance epoch accounting and pump the control channel."""
        if batch:
            self._events_since_epoch += len(batch)
            tail = batch[-1].timestamp
            if tail > self._watermark:
                self._watermark = tail
        self.pump()
        self._request_handoffs()
        if (self._events_since_epoch >= self._interval
                and not self._awaiting_reports):
            self._events_since_epoch = 0
            self._epoch += 1
            self._awaiting_reports = set(range(self._shard_count))
            self._reports = {}
            for position in range(self._shard_count):
                self._send(position, ("load", self._epoch))

    def pump(self) -> None:
        """Deliver every control response that has arrived."""
        for position, response in self._poll():
            self._deliver(position, response)

    def is_paused(self, position: int) -> bool:
        """True while a transfer migration has frozen this lane's intake."""
        return self._paused.get(position, 0) > 0

    def finalize(self, deadline: float = 30.0, liveness=None) -> None:
        """Settle every in-flight migration at end of stream.

        Planning freezes first (a migration planned now could never
        complete its handshake).  Aligned migrations flush their
        unconfirmed handoff buffers — the donor's windows close during
        its own ``finish`` and the cut still partitions the victim's
        events, so parity holds; only the handoff happened later than a
        mid-stream drain would have.  Transfer migrations must still
        complete for real: the export requests are already in the donors'
        FIFOs, so their answers are pumped out before the shards finish.

        ``liveness(pending, stalled)`` — supplied by the shard supervisor
        — may raise :class:`ShardFailure` when a donor the wait depends
        on is found dead or silent, turning a full-deadline stall into a
        prompt recovery.
        """
        self._closing = True
        self._request_handoffs()
        waiter = DEFAULT_BACKOFF.waiter(deadline)
        while any(migration.transfer
                  for migration in self._migrating.values()):
            before = len(self._migrating)
            self.pump()
            if not any(migration.transfer
                       for migration in self._migrating.values()):
                break
            if len(self._migrating) != before:
                waiter.reset()
                continue
            if liveness is not None:
                liveness({migration.source
                          for migration in self._migrating.values()
                          if migration.transfer}, waiter.elapsed)
            if not waiter.wait():
                raise RuntimeError(
                    "state-transfer migration did not complete: donor "
                    "shard never answered the export request")
        for migration in self._migrating.values():
            self._complete_aligned(migration, mid_stream=False)
        self._migrating.clear()

    # -- supervisor hooks ----------------------------------------------------

    def disable_planning(self) -> None:
        """Permanently stop planning migrations (a lane was retired).

        A retired lane reports near-zero load, so the balancer would
        happily pick it as a thief — and events fed to it would vanish.
        After a migrate recovery the remaining lanes keep their routes
        for the rest of the run.
        """
        self._closing = True

    def on_recovery(self, position: int) -> None:
        """Reset control-channel expectations after a shard was rebuilt.

        The dead worker's un-answered messages fall into two classes:
        state-bearing requests (export/import) are journaled by the
        supervisor and re-answered during replay, while ephemeral ones
        must be re-asked — pending aligned drains are re-armed here, and
        an epoch stuck waiting on the dead shard's load report is
        abandoned (the next interval starts a fresh one; late answers
        carry a stale epoch and are ignored).
        """
        if self._awaiting_reports:
            self._awaiting_reports.clear()
            self._reports = {}
            self._events_since_epoch = 0
        for migration in self._migrating.values():
            if (migration.source == position and not migration.transfer
                    and migration.drain_pending):
                migration.drain_pending = False

    # -- control-channel handling -------------------------------------------

    def _request_handoffs(self) -> None:
        for migration in self._migrating.values():
            if migration.drain_pending:
                continue
            migration.drain_pending = True
            if migration.transfer:
                self._send(migration.source,
                           ("export", migration.key, migration.cut))
            else:
                self._send(migration.source,
                           ("drain", migration.agentid, migration.cut))

    def _deliver(self, position: int, response: Tuple) -> None:
        kind = response[0]
        if kind == "load":
            _, epoch, report = response
            if epoch == self._epoch and position in self._awaiting_reports:
                self._awaiting_reports.discard(position)
                self._reports[position] = report
                if not self._awaiting_reports:
                    self._plan_epoch()
        elif kind == "drain":
            _, agentid, cut, drained = response
            migration = self._migrating.get(agentid.casefold())
            if (migration is None or migration.source != position
                    or migration.cut != cut):
                return  # stale answer from a superseded migration
            if drained:
                self._complete_aligned(migration, mid_stream=True)
                del self._migrating[migration.key]
            else:
                # Not drained yet: re-ask on the next batch boundary.
                migration.drain_pending = False
        elif kind == "export":
            _, key, cut, payload = response
            migration = self._migrating.get(key)
            if (migration is None or migration.source != position
                    or migration.cut != cut or not migration.transfer
                    or migration.exported):
                return  # stale answer from a superseded migration
            # Both lanes are paused, so importing now is safe: the state
            # merges into a frozen thief whose frontier cannot advance
            # past it.  The held events wait until the whole group has
            # exported, then flow in one journal-ordered merge.
            self._send(migration.target,
                       ("import", migration.key, payload))
            migration.exported = True
            if all(m.exported for m in self._migrating.values()
                   if m.transfer):
                self._flush_transfer_group()
        # "import" acknowledgements need no action: ordering is FIFO.

    def _flush_transfer_group(self) -> None:
        """Complete every exported transfer migration in one group.

        The held buffers of all victims and the thief's paused backlog
        cover the same stretch of the stream, so they are merged in
        journal order before feeding — delivering them buffer-by-buffer
        would let one buffer's newer events advance the thief's watermark
        past another's older events, closing windows early and splitting
        their alerts.  Then the routes switch and both lanes resume.
        """
        group = [migration for migration in self._migrating.values()
                 if migration.transfer and migration.exported]
        held: Dict[int, List[Event]] = {}
        for migration in group:
            held.setdefault(migration.target, []).extend(migration.buffer)
        for target, events in held.items():
            if self._drain_pending is not None:
                events.extend(self._drain_pending(target))
            events.sort(key=lambda event: (event.timestamp, event.event_id))
            if self._feed_events is not None:
                self._feed_events(target, events)
        for migration in group:
            self._overrides[migration.key] = migration.target
            self._purge_route(migration.key)
            self.records.append(MigrationRecord(
                agentid=migration.agentid,
                source=migration.source,
                target=migration.target,
                cut=migration.cut,
                events_held=len(migration.buffer),
                completed_mid_stream=not self._closing,
                transferred=True))
            migration.buffer = []
            del self._migrating[migration.key]
            self._paused[migration.source] -= 1
            self._paused[migration.target] -= 1
        if self._flush_pending is not None:
            for position in sorted({m.source for m in group}
                                   | {m.target for m in group}):
                if not self.is_paused(position):
                    self._flush_pending(position)

    def _plan_epoch(self) -> None:
        if self._closing:
            return
        if self._transfer and self._migrating:
            # One transfer group at a time: its lanes are paused, and a
            # second group could overlap them inconsistently.  Sustained
            # skew resolves over the following epochs.
            return
        loads = [dict(self._reports[position].events_by_agentid)
                 for position in range(self._shard_count)]

        def stealable(agentid: str) -> bool:
            return (agentid.casefold() not in self._migrating
                    and self._stealable(agentid))

        planned: List[_ActiveMigration] = []
        for decision in self._balancer.plan(loads, stealable=stealable):
            # The reports describe the closing epoch; only act when the
            # victim still routes to the reported donor (a migration that
            # completed mid-epoch splits its counts across two reports).
            if self._resolve_route(decision.agentid) != decision.source:
                continue
            cut = self._eligibility.cut_after(self._watermark)
            migration = _ActiveMigration(
                agentid=decision.agentid,
                key=decision.agentid.casefold(),
                source=decision.source,
                target=decision.target,
                cut=cut,
                transfer=self._transfer)
            self._migrating[migration.key] = migration
            planned.append(migration)
        if self._transfer:
            for migration in planned:
                # Freeze both lanes at the planning watermark: push the
                # parent's pending buffers down (the export must see
                # every already-routed victim event; the thief must not
                # advance past the events about to be held), then stop
                # feeding until the group completes.
                if self._flush_pending is not None:
                    self._flush_pending(migration.source)
                    self._flush_pending(migration.target)
                self._paused[migration.source] += 1
                self._paused[migration.target] += 1

    @property
    def migrations_in_flight(self) -> int:
        """How many migrations are currently between decision and handoff."""
        return len(self._migrating)

    def _complete_aligned(self, migration: _ActiveMigration,
                          mid_stream: bool) -> None:
        self._flush(migration.target, migration.buffer)
        self._overrides[migration.key] = migration.target
        self._purge_route(migration.key)
        self.records.append(MigrationRecord(
            agentid=migration.agentid,
            source=migration.source,
            target=migration.target,
            cut=migration.cut,
            events_held=len(migration.buffer),
            completed_mid_stream=mid_stream,
            transferred=migration.transfer))
        migration.buffer = []


class _ShardCheckpointer:
    """Parent-coordinated checkpointing for one sharded ``execute`` run.

    At batch boundaries where a checkpoint is due (every ``interval``
    routed events) and no migration is in flight, the parent flushes its
    routing buffers, posts a ``("snapshot", seq)`` control message to
    every shard, and blocks until all answers arrive — control messages
    are processed in feed order, so each shard's snapshot reflects
    exactly the events routed to it so far, and together with the
    parent's stream cursor they form one consistent global checkpoint.
    Responses for other subsystems that surface while waiting (load
    reports, drain/export answers) are forwarded to the stealing
    coordinator instead of being dropped.
    """

    def __init__(self, store, interval: int, shard_count: int,
                 send, poll, flush_all, single_lane,
                 overrides: Dict[str, int], resolved_map,
                 resume_cursor=None, steal_coordinator=None,
                 liveness=None, on_checkpoint=None):
        self._store = store
        self._liveness = liveness
        self._on_checkpoint = on_checkpoint
        self._interval = interval
        self._shard_count = shard_count
        self._send = send
        self._poll = poll
        self._flush_all = flush_all
        self._single_lane = single_lane
        self._overrides = overrides
        self._resolved_map = resolved_map
        self._coordinator = steal_coordinator
        self._sequence = 0
        self._events_since = 0
        # A resumed run continues the crashed run's cursor — in
        # particular the frontier ids at the watermark.  Starting from
        # scratch instead would let a checkpoint written right after a
        # resume carry only the post-resume ids of a tied timestamp, and
        # a second recovery would re-deliver the pre-crash ties whose
        # effects are already in the restored state.
        self._events_total = (resume_cursor.events_ingested
                              if resume_cursor is not None else 0)
        self._watermark = (resume_cursor.watermark
                           if resume_cursor is not None else float("-inf"))
        self._last_event_id = (resume_cursor.last_event_id
                               if resume_cursor is not None else 0)
        self._frontier: set = (set(resume_cursor.frontier_ids)
                               if resume_cursor is not None else set())
        #: Checkpoints written during this run (for observability/tests).
        self.checkpoints_written = 0

    def observe_batch(self, batch: Sequence[Event]) -> None:
        """Advance the global stream cursor over one routed batch."""
        for event in batch:
            timestamp = event.timestamp
            if timestamp > self._watermark:
                self._watermark = timestamp
                self._frontier = {event.event_id}
            elif timestamp == self._watermark:
                self._frontier.add(event.event_id)
            self._last_event_id = event.event_id
        self._events_since += len(batch)
        self._events_total += len(batch)

    def maybe_checkpoint(self) -> None:
        """Checkpoint when due; deferred while a migration is in flight.

        A migration between decision and handoff keeps victim events in a
        parent-side buffer no shard snapshot can see; waiting for the
        handoff (at most a few batches) keeps the checkpoint a pure
        function of the shards plus the cursor.
        """
        if self._events_since < self._interval:
            return
        if (self._coordinator is not None
                and self._coordinator.migrations_in_flight):
            return
        self.checkpoint()

    def checkpoint(self, deadline: float = 30.0) -> None:
        """Collect one consistent snapshot from every lane and persist it."""
        from repro.core.snapshot.codecs import SNAPSHOT_VERSION, encode_float
        self._flush_all()
        self._sequence += 1
        for position in range(self._shard_count):
            self._send(position, ("snapshot", self._sequence))
        collected: Dict[int, Any] = {}
        waiter = DEFAULT_BACKOFF.waiter(deadline)
        while len(collected) < self._shard_count:
            progressed = False
            for position, response in self._poll():
                if response[0] == "snapshot":
                    _, sequence, state = response
                    if sequence == self._sequence:
                        collected[position] = state
                        progressed = True
                elif self._coordinator is not None:
                    self._coordinator._deliver(position, response)
            if len(collected) >= self._shard_count:
                break
            if progressed:
                waiter.reset()
                continue
            if self._liveness is not None:
                # The supervisor raises ShardFailure for a dead or silent
                # lane; this checkpoint attempt aborts (its sequence is
                # burned, late answers are filtered) and the next due
                # batch retries against the recovered lane.
                self._liveness(
                    set(range(self._shard_count)) - set(collected),
                    waiter.elapsed)
            if not waiter.wait():
                raise RuntimeError(
                    "checkpoint timed out: a shard never answered the "
                    "snapshot request")
        snapshot = {
            "version": SNAPSHOT_VERSION,
            "kind": "sharded",
            "shard_count": self._shard_count,
            "shards": [collected[position]
                       for position in range(self._shard_count)],
            "single_lane": (self._single_lane.export_state()
                            if self._single_lane is not None else None),
            "overrides": dict(self._overrides),
            "resolved_map": (dict(self._resolved_map)
                             if self._resolved_map is not None else None),
            "cursor": {
                "watermark": encode_float(self._watermark),
                "last_event_id": self._last_event_id,
                "frontier_ids": sorted(self._frontier),
                "events_ingested": self._events_total,
            },
        }
        self._store.save(snapshot)
        self.checkpoints_written += 1
        self._events_since = 0
        if self._on_checkpoint is not None:
            # The supervisor adopts the snapshot as the new recovery base
            # and drops its event/control backlog (everything journaled
            # so far is contained in the snapshot: the buffers were
            # flushed above and control messages run in feed order).
            self._on_checkpoint(snapshot)



def _lane_feeders(lanes, buffers: List[List["Event"]],
                  active: Sequence[bool], feed=None, send=None):
    """Build the parent-side routing-buffer plumbing for one backend.

    All three lane classes expose ``feed``/``request_control``, so the
    serial/thread and process execute paths share these closures instead
    of maintaining drifting copies: ``flush_pending`` pushes one lane's
    buffered events down its feed channel, ``flush_all_pending`` does so
    for every lane (checkpoint barrier), ``drain_pending`` pops and
    returns a lane's buffer (transfer-group journal merge),
    ``feed_events`` delivers an explicit event list to an active lane,
    and ``send`` posts a control message.

    ``feed(position, batch)`` / ``send(position, message)`` default to
    direct lane calls; a supervised run passes the supervisor's wrappers
    so every delivery is journaled and failure-recovered.  The routing
    buffer is detached *before* feeding: a supervised feed may recover
    the lane mid-call (replaying the journaled batch), and the buffer
    re-flushing afterwards would deliver it twice.
    """
    if feed is None:
        def feed(position: int, batch: List[Event]) -> None:
            lanes[position].feed(batch)
    if send is None:
        def send(position: int, message: Tuple) -> None:
            lanes[position].request_control(message)

    def flush_pending(position: int) -> None:
        if buffers[position]:
            batch = buffers[position]
            buffers[position] = []
            feed(position, batch)

    def flush_all_pending() -> None:
        for position in range(len(buffers)):
            flush_pending(position)

    def drain_pending(position: int) -> List[Event]:
        drained = buffers[position]
        buffers[position] = []
        return drained

    def feed_events(position: int, events: Sequence[Event]) -> None:
        if events and active[position]:
            feed(position, list(events))

    return flush_pending, flush_all_pending, drain_pending, feed_events, send


# ---------------------------------------------------------------------------
# Shard supervision (in-run crash/hang recovery)
# ---------------------------------------------------------------------------

class _RetiredLane:
    """Placeholder for a shard whose state migrated to the survivors.

    After a migrate recovery the position's traffic is re-routed at the
    source (overrides for known agentids, :meth:`_ShardSupervisor.reroute`
    for fresh ones), but the control protocol still addresses every
    position — checkpoints snapshot all lanes, epochs collect all load
    reports — so the retired slot answers control messages inline against
    the drained salvage scheduler and contributes its salvaged alerts at
    finish.  It reports itself alive (there is no worker to die) and
    refuses event feeds loudly: any feed reaching it is a routing bug.
    """

    def __init__(self, index: int, scheduler: ConcurrentQueryScheduler,
                 alerts: List[Alert]):
        self.index = index
        self.generation = -1
        self._scheduler = scheduler
        self._alerts = alerts
        self._responses: List[Tuple] = []

    def feed(self, batch: List[Event],
             timeout: Optional[float] = None) -> None:
        raise ShardFailure(
            self.index, "retired",
            f"shard {self.index} was retired after state migration; its "
            "events must re-route to the survivors")

    def request_control(self, message: Tuple,
                        timeout: Optional[float] = None) -> None:
        self._responses.append(_answer_control(self._scheduler, message))

    def poll_control(self) -> List[Tuple]:
        responses, self._responses = self._responses, []
        return responses

    def buffer_sample(self) -> Tuple[int, int]:
        return (0, 0)

    def is_alive(self) -> bool:
        return True

    def finish(self, timeout: Optional[float] = None
               ) -> Tuple[List[Alert], SchedulerStats]:
        # The salvage scheduler replayed the dead lane's backlog, so its
        # registry carries that work; snapshot directly (its finish() is
        # never called — the migrated state flushes on the survivors).
        if self._scheduler.metrics.enabled:
            self._scheduler.stats.metrics_snapshot = (
                self._scheduler.metrics.snapshot())
        return self._alerts, self._scheduler.stats

    def close(self) -> None:
        pass

    def shutdown(self) -> None:
        pass

    def join(self) -> None:
        pass


class _ShardSupervisor:
    """Detects dead/hung shard lanes and recovers them without aborting.

    One supervisor lives for one ``execute`` run.  It interposes on every
    delivery to the lanes (the supervised ``feed``/``send`` closures of
    :func:`_lane_feeders`), journaling a per-shard backlog of event
    batches and state-bearing control messages (export/import) since the
    last completed checkpoint.  Failures surface three ways: a delivery
    raises :class:`ShardFailure` (dead worker, enqueue deadline passed),
    the per-batch liveness scan finds a worker gone, or a ``("ping",
    seq)`` probe ages past ``probe_timeout``.  Recovery then either

    * **restarts** the lane — rebuild it from the last checkpoint slice
      (None at run start) and replay the journaled backlog; the restored
      alert ledger reproduces pre-checkpoint alerts and the replay
      regenerates the rest, so the merged stream matches a fault-free
      run (a crashed worker never shipped its partial output: process
      lanes report alerts only at end of stream, in-process lanes' alert
      lists die with the replaced object); or
    * **migrates** — when no checkpoint exists, the backlog (which then
      spans the whole run) is replayed into a parent-side salvage
      scheduler, every agentid observed is exported through the snapshot
      codecs and imported into a surviving lane (journaled there, so a
      survivor crash replays it too), routes are overridden, and the
      position is retired.  Requires a state-transfer-eligible lane
      (same analysis as stealing), no pinned queries homed to the
      position, at least one survivor, and no migration in flight; any
      miss falls back to restart (with no checkpoint the backlog covers
      the run from its start, so a from-scratch replay is always
      available).  Stat counters for replayed work are counted by the
      replaying lane, so merged work counters may exceed a fault-free
      run's — the alert stream is what is guaranteed identical.

    ``max_recoveries`` bounds recoveries per shard: a deterministic
    poison batch would otherwise crash-replay-crash forever.
    """

    _JOURNALED_CONTROL = ("export", "import")

    def __init__(self, policy: SupervisionPolicy, backend: str,
                 lanes: List[Any], active: List[bool], rebuild,
                 restored: Optional[Dict[str, Any]],
                 overrides: Dict[str, int],
                 route_cache: Dict[str, int],
                 build_spare=None, allow_migrate: bool = False,
                 pinned_positions: frozenset = frozenset()):
        self._policy = policy
        self._backend = backend
        self._lanes = lanes            # mutated in place on recovery
        self._active = active          # mutated in place on retirement
        self._rebuild = rebuild
        self._snapshot = restored      # latest sharded snapshot (or None)
        self._overrides = overrides
        self._route_cache = route_cache
        self._build_spare = build_spare
        self._allow_migrate = allow_migrate
        self._pinned_positions = pinned_positions
        self._backlogs: List[List[Tuple[str, Any]]] = [[] for _ in lanes]
        self._generations: List[int] = [0] * len(lanes)
        self._recovery_counts: Counter = Counter()
        self._retired: set = set()
        self._survivors: Dict[int, Tuple[int, ...]] = {}
        self._pings: Dict[int, Tuple[int, float]] = {}
        self._ping_seq = 0
        self._events_since_probe = 0
        self._closing = False
        self._poll = None
        self._coordinator = None
        self._drain_parent = None
        self._requeue = None
        self._standalone_pump = True
        #: Completed recoveries, in order (observability, benchmarks).
        self.records: List[RecoveryRecord] = []

    def bind(self, coordinator=None, drain_parent=None,
             requeue=None) -> None:
        """Late-bind run plumbing built after the supervisor."""
        self._coordinator = coordinator
        self._drain_parent = drain_parent
        self._requeue = requeue
        # With a stealing coordinator, its per-batch pump drains the
        # control channel (and our poll wrapper skims the pongs); without
        # one the supervisor pumps itself or probes would never age out.
        self._standalone_pump = coordinator is None

    # -- supervised delivery -------------------------------------------------

    def generation(self, position: int) -> int:
        return self._generations[position]

    def feed(self, position: int, batch: List[Event]) -> None:
        """Deliver one event batch, journaling it first."""
        if position in self._retired:
            if self._requeue is not None:
                self._requeue(batch)
            return
        if not self._active[position]:
            return
        self._backlogs[position].append(("events", batch))
        self._operate(
            position,
            lambda lane: lane.feed(batch,
                                   timeout=self._policy.feed_timeout),
            journaled=True)

    def send(self, position: int, message: Tuple) -> None:
        """Deliver one control message (journaled when state-bearing)."""
        journaled = message[0] in self._JOURNALED_CONTROL
        if journaled and position not in self._retired:
            self._backlogs[position].append(("ctrl", message))
        self._operate(
            position,
            lambda lane: lane.request_control(
                message, timeout=self._policy.feed_timeout),
            journaled=journaled)

    def _operate(self, position: int, operation, journaled: bool) -> None:
        """Run one delivery, recovering the lane on failure.

        A journaled delivery is not retried after recovery — the backlog
        replay already carried it into the replacement.  A non-journaled
        one (ping, snapshot, load, drain) is retried so the request
        actually reaches the rebuilt lane.
        """
        while True:
            try:
                operation(self._lanes[position])
                return
            except ShardFailure as failure:
                if failure.reason == "retired":
                    return
                self.recover(position, failure.reason, str(failure))
            except Exception as error:
                self.recover(position, "error",
                             f"{type(error).__name__}: {error}")
            if journaled or position in self._retired:
                return

    # -- detection -----------------------------------------------------------

    def wrap_poll(self, poll):
        """Wrap a backend's control poll: skim pongs, drain retired lanes.

        The process backend's poll reads the shared out-queue only, so a
        retired slot's inline answers (snapshots, load reports) are
        collected here; the in-process backends iterate the lane list
        and pick them up natively.
        """
        drain_retired = self._backend == "process"

        def supervised_poll() -> List[Tuple[int, Tuple]]:
            responses: List[Tuple[int, Tuple]] = []
            for position, response in poll():
                if response and response[0] == "ping":
                    self._pings.pop(position, None)
                else:
                    responses.append((position, response))
            if drain_retired:
                for position in sorted(self._retired):
                    for response in self._lanes[position].poll_control():
                        if response and response[0] == "ping":
                            continue
                        responses.append((position, response))
            return responses

        self._poll = supervised_poll
        return supervised_poll

    def after_batch(self, routed_events: int) -> None:
        """Per-batch supervision: liveness scan, probe aging, new probes."""
        if self._standalone_pump and self._poll is not None:
            # Nobody else drains the control channel this run; skim the
            # pongs and drop anything else (it can only be a stale answer
            # from an aborted checkpoint attempt).
            self._poll()
        now = time.monotonic()
        for position, lane in enumerate(self._lanes):
            if position in self._retired or not self._active[position]:
                continue
            alive = getattr(lane, "is_alive", None)
            if alive is not None and not alive():
                self.recover(position, "dead",
                             f"shard {position} worker found dead by the "
                             "liveness scan")
                continue
            pending = self._pings.get(position)
            if (pending is not None
                    and now - pending[1] > self._policy.probe_timeout):
                del self._pings[position]
                self.recover(position, "hung",
                             f"shard {position} did not answer liveness "
                             f"probe {pending[0]} within "
                             f"{self._policy.probe_timeout:.1f}s")
        self._events_since_probe += routed_events
        if self._events_since_probe < self._policy.probe_interval:
            return
        self._events_since_probe = 0
        self._ping_seq += 1
        for position in range(len(self._lanes)):
            if (position in self._retired or not self._active[position]
                    or position in self._pings):
                continue
            self._pings[position] = (self._ping_seq, now)
            self._operate(
                position,
                lambda lane, seq=self._ping_seq: lane.request_control(
                    ("ping", seq), timeout=self._policy.feed_timeout),
                journaled=False)

    def liveness(self, pending, stalled: float) -> None:
        """Raise for a dead/silent lane the parent is waiting on.

        Passed to the checkpointer's collection loop and the stealing
        coordinator's finalize so a mid-handshake crash surfaces as a
        recoverable :class:`ShardFailure` instead of a deadline timeout.
        """
        for position in sorted(pending):
            if position in self._retired or not self._active[position]:
                continue
            lane = self._lanes[position]
            alive = getattr(lane, "is_alive", None)
            if alive is not None and not alive():
                raise ShardFailure(
                    position, "dead",
                    f"shard {position} worker died while the parent "
                    "awaited its control answer")
        if stalled > self._policy.probe_timeout:
            for position in sorted(pending):
                if (position not in self._retired
                        and self._active[position]):
                    raise ShardFailure(
                        position, "hung",
                        f"shard {position} went silent for "
                        f"{stalled:.1f}s during a control round")

    def attempt(self, operation) -> bool:
        """Run a parent-side control round; False when it was cut short
        by a shard failure (the lane is recovered, the caller retries)."""
        try:
            operation()
            return True
        except ShardFailure as failure:
            if failure.reason == "retired":
                return True
            self.recover(failure.position, failure.reason, str(failure))
            return False

    # -- recovery ------------------------------------------------------------

    def recover(self, position: int, reason: str, detail: str) -> None:
        """Recover one failed lane (restart or migrate); raises once the
        shard exhausts its recovery budget."""
        start = time.monotonic()
        self._pings.pop(position, None)
        self._teardown(self._lanes[position])
        self._recovery_counts[position] += 1
        if self._recovery_counts[position] > self._policy.max_recoveries:
            raise ShardFailure(
                position, reason,
                f"shard {position} exceeded its recovery budget "
                f"({self._policy.max_recoveries}) — last failure: {detail}")
        slice_ = self._snapshot_slice(position)
        mode = self._policy.recovery
        if mode == "auto":
            mode = "restart" if slice_ is not None else "migrate"
        if mode == "migrate" and (slice_ is not None
                                  or not self._can_migrate(position)):
            # With a checkpoint, hosts absent from the backlog have state
            # only the slice knows about; they cannot be re-homed, so
            # restart is the sound path.
            mode = "restart"
        if mode == "migrate":
            self.records.append(self._migrate(position, reason, start))
        else:
            # _restart appends its own record *before* recursing on a
            # replay failure, so completed recoveries stay recorded even
            # when a later nested one exhausts the budget and raises.
            self._restart(position, reason, slice_, start)
        if self._coordinator is not None:
            self._coordinator.on_recovery(position)

    def _teardown(self, lane) -> None:
        """Release a failed lane's worker without waiting on it."""
        for method in ("kill", "abandon", "close"):
            teardown = getattr(lane, method, None)
            if teardown is not None:
                try:
                    teardown()
                except Exception:
                    pass
                return

    def _snapshot_slice(self, position: int) -> Optional[Dict[str, Any]]:
        if self._snapshot is None:
            return None
        return self._snapshot["shards"][position]

    def _restart(self, position: int, reason: str,
                 slice_: Optional[Dict[str, Any]],
                 start: float) -> None:
        generation = self._generations[position] + 1
        self._generations[position] = generation
        lane = self._rebuild(position, generation, slice_)
        self._lanes[position] = lane
        replayed = 0
        timeout = self._policy.feed_timeout
        replay_failure: Optional[Tuple[str, str]] = None
        for kind, payload in list(self._backlogs[position]):
            try:
                if kind == "events":
                    replayed += len(payload)
                    lane.feed(payload, timeout=timeout)
                else:
                    lane.request_control(payload, timeout=timeout)
            except ShardFailure as failure:
                replay_failure = (failure.reason, str(failure))
                break
            except Exception as error:
                replay_failure = ("error",
                                  f"{type(error).__name__}: {error}")
                break
        self.records.append(RecoveryRecord(
            position=position, reason=reason, mode="restart",
            events_replayed=replayed,
            latency=time.monotonic() - start,
            backend=self._backend,
            restored_checkpoint=slice_ is not None))
        if replay_failure is not None:
            # The replacement failed too (the backlog holds a poison
            # batch, or the fault plan re-armed): recurse — the nested
            # recovery replays the whole backlog itself, and the budget
            # bounds the recursion.
            self.recover(position, replay_failure[0], replay_failure[1])

    def _can_migrate(self, position: int) -> bool:
        if not self._allow_migrate or self._closing:
            return False
        if position in self._pinned_positions or self._build_spare is None:
            return False
        if (self._coordinator is not None
                and self._coordinator.migrations_in_flight):
            return False
        return any(p != position and self._active[p]
                   and p not in self._retired
                   for p in range(len(self._lanes)))

    def _migrate(self, position: int, reason: str,
                 start: float) -> RecoveryRecord:
        # No checkpoint exists (checked by the caller), so the backlog
        # spans the run from its start: replaying it into a fresh salvage
        # scheduler reproduces the dead lane's full state and every alert
        # it emitted but never shipped.
        salvage = self._build_spare(position)
        salvaged: List[Alert] = []
        replayed = 0
        keys: List[str] = []
        seen: set = set()
        for kind, payload in self._backlogs[position]:
            if kind == "events":
                replayed += len(payload)
                salvaged.extend(salvage.process_events(payload))
                for event in payload:
                    key = event.agentid.casefold()
                    if key not in seen:
                        seen.add(key)
                        keys.append(key)
            else:
                # Re-run journaled exports/imports so the salvage state
                # matches the dead lane's exactly: a replayed export
                # removes state a completed steal moved away, a replayed
                # import restores state stolen *to* this lane (and its
                # agentid then migrates onward with the rest).
                _answer_control(salvage, payload)
                if payload[0] == "import" and payload[1] not in seen:
                    seen.add(payload[1])
                    keys.append(payload[1])
        survivors = tuple(p for p in range(len(self._lanes))
                          if p != position and self._active[p]
                          and p not in self._retired)
        moved: List[str] = []
        for key in keys:
            payload = salvage.extract_agent_state(key)
            target = survivors[zlib.crc32(key.encode("utf-8"))
                               % len(survivors)]
            self.send(target, ("import", key, payload))
            self._overrides[key] = target
            self._purge_route(key)
            moved.append(key)
        salvaged.extend(salvage.finish())
        self._lanes[position] = _RetiredLane(position, salvage, salvaged)
        self._retired.add(position)
        self._active[position] = False
        self._survivors[position] = survivors
        self._backlogs[position] = []
        if self._coordinator is not None:
            self._coordinator.disable_planning()
        if self._drain_parent is not None and self._requeue is not None:
            # The parent's routing buffer for the dead lane re-routes to
            # the survivors (through the overrides just installed).
            self._requeue(self._drain_parent(position))
        return RecoveryRecord(
            position=position, reason=reason, mode="migrate",
            events_replayed=replayed,
            latency=time.monotonic() - start,
            backend=self._backend,
            restored_checkpoint=False,
            migrated_agentids=tuple(moved))

    def _purge_route(self, key: str) -> None:
        for cached in [spelling for spelling in self._route_cache
                       if spelling.casefold() == key]:
            del self._route_cache[cached]

    # -- routing and lifecycle ----------------------------------------------

    def reroute(self, agentid: str, position: int) -> int:
        """Redirect traffic for retired positions to their survivors.

        Known agentids were redirected through the overrides during the
        migration; an agentid first seen afterwards still hashes to the
        retired slot and is re-homed here — deterministically, and the
        override is installed so checkpoints persist the route.
        """
        if position not in self._retired:
            return position
        key = agentid.casefold()
        target = self._overrides.get(key)
        if target is None or target in self._retired:
            survivors = self._survivors[position]
            target = survivors[zlib.crc32(key.encode("utf-8"))
                               % len(survivors)]
            self._overrides[key] = target
            self._purge_route(key)
        return target

    def note_checkpoint(self, snapshot: Dict[str, Any]) -> None:
        """Adopt a completed checkpoint as the recovery base."""
        self._snapshot = snapshot
        self._backlogs = [[] for _ in self._lanes]

    def set_closing(self) -> None:
        """Enter the result-collection phase: migrate recoveries are off
        (the survivors' feed channels already carry their stop sentinel,
        so an import could never reach them)."""
        self._closing = True

    def finish_lane(self, position: int
                    ) -> Tuple[List[Alert], SchedulerStats]:
        """Finish one in-process lane, recovering (and re-finishing) on
        failure; the replacement's replayed state finishes in its place."""
        while True:
            lane = self._lanes[position]
            try:
                return lane.finish(timeout=self._policy.probe_timeout)
            except ShardFailure as failure:
                if failure.reason == "retired":
                    return lane.finish()
                self.recover(position, failure.reason, str(failure))
            except Exception as error:
                self.recover(position, "error",
                             f"{type(error).__name__}: {error}")


# ---------------------------------------------------------------------------
# The sharded scheduler
# ---------------------------------------------------------------------------

class ShardedScheduler:
    """Executes many SAQL queries over one stream, sharded by ``agentid``.

    The public surface mirrors :class:`ConcurrentQueryScheduler`:
    ``add_query``/``add_queries`` to register, ``execute`` to run over a
    finite stream, ``alerts``/``stats`` afterwards.  Differences:

    * ``add_query`` returns the :class:`ShardabilityReport` for the query
      (also kept in :attr:`reports`) instead of a live engine — with the
      process backend the engines live in the workers.
    * ``execute`` returns the merged alert stream in a deterministic order
      (by timestamp, query, window, payload) that is independent of the
      backend and of shard interleaving.
    * :attr:`stats` is the merged aggregate; :attr:`per_shard_stats` and
      :attr:`single_lane_stats` expose the per-lane figures.
    """

    def __init__(self, shards: int = 4, backend: str = "serial",
                 sink: Optional[AlertSink] = None,
                 enable_sharing: bool = True,
                 batch_size: int = DEFAULT_BATCH_SIZE,
                 shard_map: Optional[Union[str, Mapping[str, int]]] = None,
                 auto_prefix: int = DEFAULT_AUTO_PREFIX,
                 rebalance_interval: Optional[int] = None,
                 rebalance_ratio: float = DEFAULT_REBALANCE_RATIO,
                 checkpoint_store=None,
                 checkpoint_interval: Optional[int] = None,
                 columnar: bool = True,
                 supervision: Union[bool, SupervisionPolicy, None] = None,
                 quarantine_errors: Optional[int] = None,
                 fault_plan=None, metrics: bool = True):
        if shards < 1:
            raise ValueError("shard count must be at least 1")
        if backend not in _BACKENDS:
            raise ValueError(f"unknown backend {backend!r}; "
                             f"expected one of {_BACKENDS}")
        if batch_size < 1:
            raise ValueError("batch size must be at least 1")
        if quarantine_errors is not None and quarantine_errors < 1:
            raise ValueError("quarantine budget must be at least 1 error")
        if auto_prefix < 1:
            raise ValueError("auto-map prefix must be at least 1 event")
        if rebalance_interval is not None and rebalance_interval < 1:
            raise ValueError("rebalance interval must be at least 1 event")
        if checkpoint_interval is not None and checkpoint_interval < 1:
            raise ValueError("checkpoint interval must be at least 1 event")
        if checkpoint_store is not None and checkpoint_interval is None:
            raise ValueError("a checkpoint store needs checkpoint_interval "
                             "(events between checkpoints)")
        self.shards = shards
        self.backend = backend
        self._sink = sink
        self._enable_sharing = enable_sharing
        self._columnar = columnar
        self._batch_size = batch_size
        # Mid-stream work stealing: None disables it; otherwise the number
        # of routed events between load-report epochs.  The balancer is
        # built per run so each execute() starts from clean epochs.
        self._rebalance_interval = rebalance_interval
        self._rebalance_ratio = rebalance_ratio
        if rebalance_interval is not None:
            # Validate the ratio eagerly (the balancer owns the rule).
            WorkStealingBalancer(ratio=rebalance_ratio)
        # Load-aware assignment: None/"hash" = stable crc32 of the agentid;
        # "auto" = bin-pack by the event counts of a stream prefix at
        # execute() time; a mapping = explicit agentid -> shard overrides.
        if isinstance(shard_map, str) and shard_map not in ("auto", "hash"):
            raise ValueError(f"unknown shard map mode {shard_map!r}; "
                             "expected 'auto', 'hash' or an explicit "
                             "agentid -> shard mapping")
        self._shard_map: Optional[Union[str, Dict[str, int]]] = (
            None if shard_map == "hash" else
            shard_map if isinstance(shard_map, str) or shard_map is None
            else self._validated_map(shard_map))
        self._auto_prefix = auto_prefix
        #: The agentid -> shard overrides routing the current/last run
        #: (casefolded keys; None when pure hash routing is in effect).
        self.resolved_shard_map: Optional[Dict[str, int]] = (
            dict(self._shard_map)
            if isinstance(self._shard_map, dict) else None)
        #: (name, source, pinned agentid or None, compatibility signature)
        #: for queries routed to the sharded lane.
        self._sharded_queries: List[Tuple[str, Union[str, ast.Query],
                                          Optional[str], Any]] = []
        #: (name, source) pairs that must observe the full stream.
        self._single_lane_queries: List[Tuple[str, Union[str, ast.Query]]] = []
        #: query name -> shardability report, in registration order.
        self.reports: Dict[str, ShardabilityReport] = {}
        self._alerts: List[Alert] = []
        self._merged_stats = SchedulerStats()
        self.per_shard_stats: List[SchedulerStats] = []
        self.single_lane_stats: Optional[SchedulerStats] = None
        #: Migrations the last run completed, in completion order.
        self.migrations: List[MigrationRecord] = []
        #: Whether (and why) the last run could steal at all; None until
        #: a run with rebalancing enabled resolves it.
        self.last_steal_eligibility: Optional[StealEligibility] = None
        # Durable checkpointing: the parent coordinates — it flushes its
        # routing buffers, asks every shard for a state snapshot over the
        # control channel, and persists the combined snapshot with the
        # global stream cursor (see repro.core.snapshot).
        self._checkpoint_store = checkpoint_store
        self._checkpoint_interval = checkpoint_interval
        #: Checkpoints the last run persisted.
        self.checkpoints_written = 0
        # Shard supervision: None/False runs fail-fast (historical
        # behaviour), True enables the default policy, or pass a tuned
        # SupervisionPolicy.
        if supervision is True:
            supervision = SupervisionPolicy()
        elif supervision is False:
            supervision = None
        if (supervision is not None
                and not isinstance(supervision, SupervisionPolicy)):
            raise ValueError("supervision must be True/False/None or a "
                             "SupervisionPolicy")
        self._supervision: Optional[SupervisionPolicy] = supervision
        #: Whether every lane runs with a live metrics registry; the
        #: merged snapshot lands on ``stats.metrics_snapshot`` (and
        #: :meth:`metrics_snapshot`) after a run.
        self._metrics_enabled = metrics
        #: Per-query fatal-error budget forwarded to every lane's
        #: scheduler (query quarantine circuit-breaker); None disables it.
        self._quarantine_errors = quarantine_errors
        #: Fault-injection plan (repro.testing.faults) installed into
        #: every lane's scheduler; None outside tests/benchmarks.
        self._fault_plan = fault_plan
        #: In-run shard recoveries the last supervised run performed.
        self.recoveries: List[RecoveryRecord] = []
        #: Snapshot installed by :meth:`restore_state`, consumed by the
        #: next :meth:`execute` (shards restore before feeding starts).
        self._restored: Optional[Dict[str, Any]] = None
        #: Cursor restored by :meth:`restore_state` (None otherwise).
        self.restored_cursor = None

    # -- registration ------------------------------------------------------

    def add_query(self, query: Union[str, ast.Query],
                  name: Optional[str] = None) -> ShardabilityReport:
        """Register one query; returns its shardability report."""
        parsed = parse_query(query) if isinstance(query, str) else query
        if name is None:
            # Workers run their own engine counters, so auto-names must be
            # assigned here to be identical on every shard.
            name = parsed.name or f"query-{len(self.reports) + 1}"
        if name in self.reports:
            raise ValueError(f"duplicate query name {name!r}")
        report = analyze_shardability(parsed)
        self.reports[name] = report
        source: Union[str, ast.Query] = (query if isinstance(query, str)
                                         else parsed)
        if report.shardable:
            self._sharded_queries.append(
                (name, source, report.pinned_agentid,
                 compatibility_signature(parsed)))
        else:
            self._single_lane_queries.append((name, source))
        return report

    def add_queries(self, queries: Iterable[Union[str, ast.Query]]) -> None:
        """Register several queries at once."""
        for query in queries:
            self.add_query(query)

    @property
    def sharded_query_names(self) -> List[str]:
        """Names of the queries running partitioned across the shards."""
        return [entry[0] for entry in self._sharded_queries]

    # -- load-aware shard assignment ---------------------------------------

    def _validated_map(self, mapping: Mapping[str, int]) -> Dict[str, int]:
        """Casefold and range-check an explicit agentid -> shard mapping."""
        validated: Dict[str, int] = {}
        for agentid, position in mapping.items():
            if not 0 <= int(position) < self.shards:
                raise ValueError(
                    f"shard map sends {agentid!r} to shard {position}, "
                    f"outside 0..{self.shards - 1}")
            key = str(agentid).casefold()
            known = validated.get(key)
            if known is not None and known != int(position):
                raise ValueError(
                    f"shard map entries for {agentid!r} collide after "
                    "casefolding (SAQL equality is case-insensitive) with "
                    "conflicting shard targets")
            validated[key] = int(position)
        return validated

    def set_shard_map(self, mapping: Mapping[str, int]) -> None:
        """Install an explicit agentid -> shard map for subsequent runs.

        Use with :meth:`plan_shard_map` when per-host event counts are
        known up front (e.g. from a replay's database statistics) instead
        of observing a stream prefix via ``shard_map="auto"``.
        """
        self._shard_map = self._validated_map(mapping)
        self.resolved_shard_map = dict(self._shard_map)

    def plan_shard_map(self, counts: Mapping[str, int]) -> Dict[str, int]:
        """Greedily bin-pack agentids onto shards by observed event count.

        Longest-processing-time packing: agentids are placed heaviest
        first onto the currently least-loaded shard, so one hot host (the
        ROADMAP's db-server example) no longer saturates the shard crc32
        happens to pick while others idle.  Agentids that satisfy a
        registered query's host pin under SAQL equality are clustered with
        that pin (they must share a shard for the pinned query to observe
        them); pins satisfied by a common agentid collapse into one
        cluster.  The result maps casefolded agentids — including the pin
        literals — to shard positions and is deterministic for equal
        counts (ties break by name, then shard position).
        """
        pins = sorted({pinned for _, _, pinned, _ in self._sharded_queries
                       if pinned is not None})
        # Union-find over pins: an agentid satisfying several pins welds
        # them into one cluster.
        leader = {pin: pin for pin in pins}

        def find(pin: str) -> str:
            while leader[pin] != pin:
                leader[pin] = leader[leader[pin]]
                pin = leader[pin]
            return pin

        cluster_members: Dict[str, List[str]] = {pin: [pin] for pin in pins}
        cluster_weight: Dict[str, int] = {pin: 0 for pin in pins}
        loose: List[Tuple[int, str]] = []
        for agentid in sorted(counts):
            weight = int(counts[agentid])
            matched = [pin for pin in pins
                       if compare_values("==", agentid, pin)]
            if not matched:
                loose.append((weight, agentid))
                continue
            root = find(matched[0])
            for pin in matched[1:]:
                other = find(pin)
                if other != root:
                    leader[other] = root
                    cluster_members[root].extend(cluster_members.pop(other))
                    cluster_weight[root] += cluster_weight.pop(other)
            cluster_members[root].append(agentid)
            cluster_weight[root] += weight
        items: List[Tuple[int, str, Tuple[str, ...]]] = [
            (cluster_weight[root], root, tuple(cluster_members[root]))
            for root in cluster_members
        ]
        items.extend((weight, agentid, (agentid,))
                     for weight, agentid in loose)
        # Heaviest first; name breaks ties so the plan is reproducible.
        items.sort(key=lambda item: (-item[0], item[1]))
        loads = [0] * self.shards
        plan: Dict[str, int] = {}
        for weight, _, members in items:
            if weight <= 0:
                # Pins whose hosts never appeared in the observed counts
                # carry no load signal; leaving them out of the plan keeps
                # the stable-hash routing, which spreads them, instead of
                # LPT piling every zero-weight cluster onto one shard.
                continue
            position = min(range(self.shards), key=lambda i: (loads[i], i))
            loads[position] += weight
            for member in members:
                plan[member.casefold()] = position
        return plan

    def _home_shard(self, agentid: str) -> int:
        """Return the shard routing ``agentid``: map override, else hash."""
        resolved = self.resolved_shard_map
        if resolved is not None:
            position = resolved.get(agentid.casefold())
            if position is not None:
                return position
        return shard_index(agentid, self.shards)

    def _resolve_auto_map(self,
                          stream: Iterable[Event]) -> Iterable[Event]:
        """Materialize the ``auto`` shard map from a stream prefix.

        Consumes up to ``auto_prefix`` events to count per-host load,
        plans the map, and hands back the prefix chained with the rest of
        the stream; re-planned on every run so the map tracks the stream
        actually being executed.
        """
        if self._shard_map == "auto":
            if self._restored is not None:
                # A restored run keeps the crashed run's resolved map —
                # the shard states were partitioned under it, and the
                # resumed stream's prefix is not the original prefix.
                return stream
            iterator = iter(stream)
            prefix = list(itertools.islice(iterator, self._auto_prefix))
            counts = Counter(event.agentid for event in prefix)
            self.resolved_shard_map = self.plan_shard_map(counts)
            return itertools.chain(prefix, iterator)
        return stream

    def _queries_for_shard(self, position: int) -> List[Tuple[str,
                                                              Union[str,
                                                                    ast.Query]]]:
        """Return the queries shard ``position`` must register.

        Host-pinned queries only ever match events of their pin's shard
        (the shard map decides which one that is), so they are routed
        there exclusively — other shards skip their groups (and the
        per-event constraint checks) entirely.  Unpinned host-local
        queries observe every host and register everywhere.
        """
        return [(name, source)
                for name, source, pinned, _ in self._sharded_queries
                if pinned is None
                or self._home_shard(pinned) == position]

    def _make_router(self, overrides: Optional[Dict[str, int]] = None,
                     cache: Optional[Dict[str, int]] = None
                     ) -> Callable[[str], int]:
        """Build the agentid -> shard routing function for one run.

        The default route is the stable hash (:func:`shard_index`), but a
        host-pinned query lives only on its pin's shard, and SAQL equality
        is looser than string identity: it case-folds, coerces numeric
        strings (``"7" == "7.0"``) and treats ``%``/``_`` on *either* side
        as LIKE wildcards.  An event whose agentid satisfies a pin under
        those semantics but hashes elsewhere would silently never reach the
        pinned query, so the router checks each distinct agentid against
        the pins with the engine's own equality and routes it to the
        satisfied pin's shard.  That stays host-consistent for the
        unpinned queries too (every event of one agentid takes one route).
        An agentid satisfying pins on *different* shards cannot be
        partitioned at all and fails loudly.  Distinct agentids are few,
        so the equality checks amortize through a cache.

        The default (non-pin) route consults the work-stealing
        ``overrides`` (casefolded agentid -> shard, installed when a
        migration's handoff completes; pins outrank them, but the balancer
        never steals a pin-satisfying agentid), then the resolved shard
        map (load-aware or explicit assignment), then the stable hash.
        ``cache`` may be passed in so the stealing coordinator can purge
        a migrated agentid's stale entries.  Every backend builds exactly
        ``self.shards`` lanes, which is what the home-shard helper routes
        over.
        """
        pins = sorted({(pinned, self._home_shard(pinned))
                       for _, _, pinned, _ in self._sharded_queries
                       if pinned is not None})
        if cache is None:
            cache = {}

        def route(agentid: str) -> int:
            position = cache.get(agentid)
            if position is None:
                targets = {shard for pin, shard in pins
                           if compare_values("==", agentid, pin)}
                if len(targets) > 1:
                    raise RuntimeError(
                        f"agentid {agentid!r} satisfies host pins on "
                        "different shards under SAQL equality; this stream "
                        "cannot be partitioned — run with shards=1 or "
                        "disambiguate the host identifiers")
                if targets:
                    position = targets.pop()
                elif overrides:
                    position = overrides.get(agentid.casefold())
                    if position is None:
                        position = self._home_shard(agentid)
                else:
                    position = self._home_shard(agentid)
                cache[agentid] = position
            return position

        return route

    def _logical_group_count(self) -> int:
        """Logical compatibility groups across the sharded lane's queries.

        Matches what one full scheduler would form over the same queries:
        one group per distinct compatibility signature under sharing, one
        per query without.
        """
        if not self._enable_sharing:
            return len(self._sharded_queries)
        return len({signature
                    for _, _, _, signature in self._sharded_queries})

    @property
    def single_lane_query_names(self) -> List[str]:
        """Names of the queries running on the full-stream fallback lane."""
        return [name for name, _ in self._single_lane_queries]

    # -- checkpoint restore ------------------------------------------------

    def restore_state(self, snapshot: Dict[str, Any]) -> None:
        """Install a checkpoint for the next :meth:`execute` to resume from.

        The scheduler must be configured identically to the crashed run
        (same shard count, same queries in the same order); the per-shard
        engine states are restored inside the shard workers before any
        event is fed.  :attr:`restored_cursor` then names the journal
        position to resume the stream from (see
        :func:`repro.core.snapshot.recovery.resume_events`).
        """
        from repro.core.snapshot.codecs import check_version
        from repro.core.snapshot.recovery import ResumeCursor
        from repro.events.serialization import decode_float
        check_version(snapshot, "sharded scheduler")
        if snapshot.get("kind") != "sharded":
            raise ValueError("not a sharded-scheduler snapshot; restore "
                             "single-process checkpoints through "
                             "ConcurrentQueryScheduler.restore_state")
        if snapshot["shard_count"] != self.shards:
            raise ValueError(
                f"snapshot was taken with {snapshot['shard_count']} shards "
                f"but this scheduler runs {self.shards}; shard state "
                "cannot be re-partitioned on restore")
        self._restored = snapshot
        resolved = snapshot["resolved_map"]
        self.resolved_shard_map = (dict(resolved) if resolved is not None
                                   else None)
        cursor = snapshot["cursor"]
        self.restored_cursor = ResumeCursor(
            watermark=decode_float(cursor["watermark"]),
            last_event_id=int(cursor["last_event_id"]),
            frontier_ids=frozenset(cursor["frontier_ids"]),
            events_ingested=int(cursor["events_ingested"]),
        )

    # -- results -----------------------------------------------------------

    @property
    def alerts(self) -> List[Alert]:
        """Return the merged, deterministically-ordered alerts."""
        return list(self._alerts)

    @property
    def stats(self) -> SchedulerStats:
        """Return the merged aggregate statistics of the last run."""
        return self._merged_stats

    def metrics_snapshot(self) -> Optional[Dict[str, Any]]:
        """The merged cross-lane metrics snapshot of the last run.

        Counters summed, gauges maxed/lasted, histogram buckets added
        across every shard lane and the full-stream lane (see
        ``repro.obs``); ``None`` before the first run or when the
        scheduler was built with ``metrics=False``.
        """
        return self._merged_stats.metrics_snapshot

    # -- execution ---------------------------------------------------------

    def execute(self, stream: Iterable[Event],
                batch_size: Optional[int] = None) -> List[Alert]:
        """Run all registered queries over a finite stream."""
        size = batch_size if batch_size is not None else self._batch_size
        if size < 1:
            raise ValueError("batch size must be at least 1")
        self.migrations = []
        self.recoveries = []
        # Resolve the auto map before shards are built: pinned-query
        # registration depends on where the map homes each pin.
        stream = self._resolve_auto_map(stream)
        if self.backend == "process" and self._sharded_queries:
            alerts = self._execute_process(stream, size)
        else:
            alerts = self._execute_in_process(stream, size)
        alerts.sort(key=_alert_sort_key)
        self._alerts = alerts
        if self._sink is not None:
            for alert in alerts:
                self._sink.emit(alert)
        return list(alerts)

    # -- work-stealing setup ------------------------------------------------

    def _resolve_steal_eligibility(self) -> Optional[StealEligibility]:
        """Return the lane eligibility when this run should rebalance.

        None when rebalancing is off, pointless (one shard, nothing
        sharded) or vetoed by a steal-unsafe query; the veto verdict is
        still published on :attr:`last_steal_eligibility`.
        """
        if (self._rebalance_interval is None or self.shards < 2
                or not self._sharded_queries):
            return None
        eligibility = steal_eligibility(self.reports)
        self.last_steal_eligibility = eligibility
        return eligibility if eligibility.eligible else None

    def _stealable_predicate(self) -> Callable[[str], bool]:
        """Build the victim filter: pin-satisfying agentids stay put."""
        pins = sorted({pinned for _, _, pinned, _ in self._sharded_queries
                       if pinned is not None})

        def stealable(agentid: str) -> bool:
            return not any(compare_values("==", agentid, pin)
                           for pin in pins)

        return stealable

    def _make_coordinator(self, eligibility: StealEligibility,
                          lane_count: int, send, poll, flush,
                          resolve_route, route_cache: Dict[str, int],
                          overrides: Dict[str, int],
                          flush_pending=None,
                          feed_events=None,
                          drain_pending=None) -> _StealingCoordinator:
        def purge_route(key: str) -> None:
            # Drop every cached spelling of the migrated agentid so the
            # next lookup consults the fresh override.
            for cached in [spelling for spelling in route_cache
                           if spelling.casefold() == key]:
                del route_cache[cached]

        assert self._rebalance_interval is not None
        return _StealingCoordinator(
            shard_count=lane_count,
            interval=self._rebalance_interval,
            balancer=WorkStealingBalancer(ratio=self._rebalance_ratio),
            eligibility=eligibility,
            stealable=self._stealable_predicate(),
            send=send, poll=poll, flush=flush,
            resolve_route=resolve_route,
            purge_route=purge_route,
            route_overrides=overrides,
            flush_pending=flush_pending,
            feed_events=feed_events,
            drain_pending=drain_pending)

    def _make_checkpointer(self, lane_count: int, send, poll, flush_all,
                           single_lane, overrides: Dict[str, int],
                           restored, coordinator, supervisor=None
                           ) -> Optional[_ShardCheckpointer]:
        if self._checkpoint_store is None:
            return None
        assert self._checkpoint_interval is not None
        return _ShardCheckpointer(
            store=self._checkpoint_store,
            interval=self._checkpoint_interval,
            shard_count=lane_count,
            send=send, poll=poll, flush_all=flush_all,
            single_lane=single_lane,
            overrides=overrides,
            resolved_map=self.resolved_shard_map,
            resume_cursor=(self.restored_cursor
                           if restored is not None else None),
            steal_coordinator=coordinator,
            liveness=(supervisor.liveness if supervisor is not None
                      else None),
            on_checkpoint=(supervisor.note_checkpoint
                           if supervisor is not None else None))

    def _make_supervisor(self, lanes: List[Any], active: List[bool],
                         rebuild, restored, overrides: Dict[str, int],
                         route_cache: Dict[str, int],
                         track_load: bool) -> Optional[_ShardSupervisor]:
        if self._supervision is None or not lanes:
            return None
        pinned = {self._home_shard(pin)
                  for _, _, pin, _ in self._sharded_queries
                  if pin is not None}
        eligibility = (steal_eligibility(self.reports)
                       if self._sharded_queries else None)
        allow_migrate = (self.shards > 1 and eligibility is not None
                         and eligibility.eligible)

        def build_spare(position: int) -> ConcurrentQueryScheduler:
            return _build_scheduler(
                self._queries_for_shard(position), self._enable_sharing,
                track_load, self._columnar, self._quarantine_errors,
                metrics=self._metrics_enabled, shard_id=position)

        return _ShardSupervisor(
            self._supervision, self.backend, lanes, active, rebuild,
            restored, overrides, route_cache,
            build_spare=build_spare, allow_migrate=allow_migrate,
            pinned_positions=frozenset(pinned))

    def _single_lane_scheduler(self) -> Optional[ConcurrentQueryScheduler]:
        if not self._single_lane_queries:
            return None
        # The full-stream lane labels its watermark series after the last
        # shard position so it never collides with a sharded lane's.
        return _build_scheduler(self._single_lane_queries,
                                self._enable_sharing,
                                columnar=self._columnar,
                                quarantine_errors=self._quarantine_errors,
                                metrics=self._metrics_enabled,
                                shard_id=self.shards)

    def _finalize(self, shard_results: Sequence[Tuple[List[Alert],
                                                      SchedulerStats]],
                  single_lane: Optional[ConcurrentQueryScheduler],
                  single_alerts: List[Alert],
                  events_ingested: int,
                  sampled_peaks: Optional[Tuple[int, int]] = None
                  ) -> List[Alert]:
        alerts: List[Alert] = []
        self.per_shard_stats = []
        for shard_alerts, shard_stats in shard_results:
            alerts.extend(shard_alerts)
            self.per_shard_stats.append(shard_stats)
        self.single_lane_stats = None
        if single_lane is not None:
            single_alerts.extend(single_lane.finish())
            alerts.extend(single_alerts)
            self.single_lane_stats = single_lane.stats
        self._merged_stats = merge_stats(self.per_shard_stats,
                                         self.single_lane_stats)
        if sampled_peaks is not None:
            # In-process backends sample a genuine concurrent peak across
            # all lanes at batch boundaries; the summed per-lane figure
            # stays available as peak_buffered_*_bound (merge_stats set
            # it).  The process backend cannot sample across processes and
            # keeps the peak equal to the bound.
            self._merged_stats.peak_buffered_events = sampled_peaks[0]
            self._merged_stats.peak_buffered_matches = sampled_peaks[1]
        # Each stream event is ingested once by the sharded runtime, even
        # when the single-shard lane observed it as well; queries and
        # groups are the exact logical counts (pinned-query routing makes
        # the per-shard figures subsets).
        self._merged_stats.events_ingested = events_ingested
        single_queries = (self.single_lane_stats.queries
                          if self.single_lane_stats is not None else 0)
        single_groups = (self.single_lane_stats.groups
                         if self.single_lane_stats is not None else 0)
        self._merged_stats.queries = (len(self._sharded_queries)
                                      + single_queries)
        self._merged_stats.groups = (self._logical_group_count()
                                     + single_groups)
        return alerts

    def _execute_in_process(self, stream: Iterable[Event],
                            size: int) -> List[Alert]:
        """Run with the serial or thread backend (shards live in-process)."""
        shard_cls = ThreadShard if self.backend == "thread" else SerialShard
        eligibility = self._resolve_steal_eligibility()
        restored = self._restored
        self._restored = None
        track_load = eligibility is not None
        shards: List[Any] = []
        active: List[bool] = []
        per_shard: List[List[Tuple[str, Union[str, ast.Query]]]] = []
        if self._sharded_queries:
            per_shard = [self._queries_for_shard(position)
                         for position in range(self.shards)]
            shards = [shard_cls(queries, self._enable_sharing,
                                track_load, position,
                                restore=(restored["shards"][position]
                                         if restored is not None else None),
                                columnar=self._columnar,
                                quarantine_errors=self._quarantine_errors,
                                fault_plan=self._fault_plan,
                                metrics=self._metrics_enabled)
                      for position, queries in enumerate(per_shard)]
            active = [bool(queries) for queries in per_shard]
        single_lane = self._single_lane_scheduler()
        single_alerts: List[Alert] = []
        if single_lane is not None and restored is not None:
            single_lane.restore_state(restored["single_lane"])
            single_alerts.extend(single_lane.emitted_alerts())
        buffers: List[List[Event]] = [[] for _ in range(len(shards))]
        overrides: Dict[str, int] = (dict(restored["overrides"])
                                     if restored is not None else {})
        route_cache: Dict[str, int] = {}
        route = (self._make_router(overrides, route_cache)
                 if shards else None)

        def rebuild(position: int, generation: int, restore):
            plan = self._fault_plan
            rearm = plan if getattr(plan, "rearm_on_restart", False) else None
            return shard_cls(per_shard[position], self._enable_sharing,
                             track_load, position, restore=restore,
                             columnar=self._columnar,
                             quarantine_errors=self._quarantine_errors,
                             fault_plan=rearm,
                             metrics=self._metrics_enabled)

        supervisor = self._make_supervisor(shards, active, rebuild,
                                           restored, overrides, route_cache,
                                           track_load)

        (flush_pending, flush_all_pending, drain_pending, feed_events,
         send) = _lane_feeders(
             shards, buffers, active,
             feed=supervisor.feed if supervisor is not None else None,
             send=supervisor.send if supervisor is not None else None)

        def poll() -> List[Tuple[int, Tuple]]:
            responses: List[Tuple[int, Tuple]] = []
            for position, shard in enumerate(shards):
                for response in shard.poll_control():
                    responses.append((position, response))
            return responses

        if supervisor is not None:
            poll = supervisor.wrap_poll(poll)

        coordinator: Optional[_StealingCoordinator] = None
        if eligibility is not None and shards:

            def flush_held(target: int, events: Sequence[Event]) -> None:
                # The thief's pending normal events precede the handoff
                # buffer, so its engines' watermarks never jump ahead of
                # events still waiting in the routing buffer.
                flush_pending(target)
                feed_events(target, events)

            coordinator = self._make_coordinator(
                eligibility, len(shards), send, poll, flush_held,
                route, route_cache, overrides, flush_pending, feed_events,
                drain_pending)
        if supervisor is not None:

            def requeue(events: Sequence[Event]) -> None:
                for event in events:
                    position = supervisor.reroute(event.agentid,
                                                  route(event.agentid))
                    if active[position]:
                        buffers[position].append(event)

            supervisor.bind(coordinator=coordinator,
                            drain_parent=drain_pending, requeue=requeue)
        checkpointer = self._make_checkpointer(
            len(shards), send, poll, flush_all_pending, single_lane,
            overrides, restored, coordinator, supervisor)
        events_ingested = 0
        sampled_peak_events = 0
        sampled_peak_matches = 0
        try:
            for batch in iter_batches(stream, size):
                events_ingested += len(batch)
                if single_lane is not None:
                    single_alerts.extend(single_lane.process_events(batch))
                if shards:
                    for event in batch:
                        if (coordinator is not None
                                and coordinator.maybe_hold(event)):
                            continue
                        position = route(event.agentid)
                        if supervisor is not None:
                            position = supervisor.reroute(event.agentid,
                                                          position)
                        # A shard every query was routed away from has
                        # nothing to do with its slice of the stream.
                        if active[position]:
                            buffers[position].append(event)
                    for position, buffer in enumerate(buffers):
                        if (len(buffer) >= size
                                and not (coordinator is not None
                                         and coordinator.is_paused(position))):
                            flush_pending(position)
                    if coordinator is not None:
                        coordinator.after_batch(batch)
                    if supervisor is not None:
                        supervisor.after_batch(len(batch))
                if checkpointer is not None:
                    checkpointer.observe_batch(batch)
                    if supervisor is not None:
                        # A shard failure mid-collection aborts this
                        # attempt (recovered; retried at the next due
                        # batch) instead of failing the run.
                        supervisor.attempt(checkpointer.maybe_checkpoint)
                    else:
                        checkpointer.maybe_checkpoint()
                # Genuine concurrent retention sample across every lane at
                # this batch boundary (exact for serial, a benign racy
                # snapshot for threads); its running maximum replaces the
                # summed per-lane peak bound in the merged stats.
                sample_events = 0
                sample_matches = 0
                for shard in shards:
                    buffered_events, buffered_matches = shard.buffer_sample()
                    sample_events += buffered_events
                    sample_matches += buffered_matches
                if single_lane is not None:
                    sample_events += single_lane.stats.buffered_events
                    sample_matches += single_lane.stats.buffered_matches
                if sample_events > sampled_peak_events:
                    sampled_peak_events = sample_events
                if sample_matches > sampled_peak_matches:
                    sampled_peak_matches = sample_matches
            # Migrations settle first: a paused lane's buffered backlog
            # must reach its shard only after the held events it waits on.
            if coordinator is not None:
                if supervisor is not None:
                    while not supervisor.attempt(
                            lambda: coordinator.finalize(
                                liveness=supervisor.liveness)):
                        pass
                else:
                    coordinator.finalize()
                self.migrations = coordinator.records
            for position in range(len(buffers)):
                flush_pending(position)
            self.checkpoints_written = (checkpointer.checkpoints_written
                                        if checkpointer is not None else 0)
            if supervisor is not None:
                supervisor.set_closing()
                results = [supervisor.finish_lane(position)
                           for position in range(len(shards))]
            else:
                results = [shard.finish() for shard in shards]
        finally:
            # A failure anywhere above (a poisoned batch, a dead worker, a
            # raising stream iterator) must not leak live shard threads
            # until interpreter exit; close() is idempotent after a clean
            # finish and never raises.
            for shard in shards:
                shard.close()
            if supervisor is not None:
                self.recoveries = supervisor.records
        if restored is not None:
            # Restored engines already carry the pre-crash ingestion in
            # their stats; the parent-side once-per-event figure resumes
            # from the checkpoint cursor.
            events_ingested += restored["cursor"]["events_ingested"]
        return self._finalize(results, single_lane, single_alerts,
                              events_ingested,
                              sampled_peaks=(sampled_peak_events,
                                             sampled_peak_matches))

    def _execute_process(self, stream: Iterable[Event],
                         size: int) -> List[Alert]:
        """Run with the multiprocessing backend (one worker per shard)."""
        context = multiprocessing.get_context()
        out_queue = context.Queue()
        eligibility = self._resolve_steal_eligibility()
        restored = self._restored
        self._restored = None
        per_shard = [self._queries_for_shard(position)
                     for position in range(self.shards)]
        workers = [ProcessShard(position, queries, self._enable_sharing,
                                context, out_queue,
                                track_agent_load=eligibility is not None,
                                restore=(restored["shards"][position]
                                         if restored is not None else None),
                                columnar=self._columnar,
                                quarantine_errors=self._quarantine_errors,
                                fault_plan=self._fault_plan,
                                metrics=self._metrics_enabled)
                   for position, queries in enumerate(per_shard)]
        active = [bool(queries) for queries in per_shard]
        single_lane = self._single_lane_scheduler()
        single_alerts: List[Alert] = []
        if single_lane is not None and restored is not None:
            single_lane.restore_state(restored["single_lane"])
            single_alerts.extend(single_lane.emitted_alerts())
        buffers: List[List[Event]] = [[] for _ in workers]
        overrides: Dict[str, int] = (dict(restored["overrides"])
                                     if restored is not None else {})
        route_cache: Dict[str, int] = {}
        route = self._make_router(overrides, route_cache)
        events_ingested = 0
        #: "done" tuples a worker posted before the collection phase (a
        #: crash mid-stream) — replayed into the collection loop.
        early_done: List[Tuple] = []

        def rebuild(position: int, generation: int, restore):
            plan = self._fault_plan
            rearm = plan if getattr(plan, "rearm_on_restart", False) else None
            return ProcessShard(position, per_shard[position],
                                self._enable_sharing, context, out_queue,
                                track_agent_load=eligibility is not None,
                                restore=restore, columnar=self._columnar,
                                generation=generation,
                                quarantine_errors=self._quarantine_errors,
                                fault_plan=rearm,
                                metrics=self._metrics_enabled)

        supervisor = self._make_supervisor(workers, active, rebuild,
                                           restored, overrides, route_cache,
                                           eligibility is not None)

        (flush_pending, flush_all_pending, drain_pending, feed_events,
         send) = _lane_feeders(
             workers, buffers, active,
             feed=supervisor.feed if supervisor is not None else None,
             send=supervisor.send if supervisor is not None else None)

        def poll() -> List[Tuple[int, Tuple]]:
            responses: List[Tuple[int, Tuple]] = []
            while True:
                try:
                    item = out_queue.get_nowait()
                except queue.Empty:
                    return responses
                if item[0] == "ctrl":
                    _, index, generation, response = item
                    # A replaced worker's late answers carry its old
                    # generation and are dropped.
                    if generation == getattr(workers[index],
                                             "generation", 0):
                        responses.append((index, response))
                else:
                    early_done.append(item)

        if supervisor is not None:
            poll = supervisor.wrap_poll(poll)

        coordinator: Optional[_StealingCoordinator] = None
        if eligibility is not None:

            def flush_held(target: int, events: Sequence[Event]) -> None:
                flush_pending(target)
                feed_events(target, events)

            coordinator = self._make_coordinator(
                eligibility, len(workers), send, poll, flush_held,
                route, route_cache, overrides, flush_pending, feed_events,
                drain_pending)
        if supervisor is not None:

            def requeue(events: Sequence[Event]) -> None:
                for event in events:
                    position = supervisor.reroute(event.agentid,
                                                  route(event.agentid))
                    if active[position]:
                        buffers[position].append(event)

            supervisor.bind(coordinator=coordinator,
                            drain_parent=drain_pending, requeue=requeue)
        checkpointer = self._make_checkpointer(
            len(workers), send, poll, flush_all_pending, single_lane,
            overrides, restored, coordinator, supervisor)
        try:
            try:
                for batch in iter_batches(stream, size):
                    events_ingested += len(batch)
                    if single_lane is not None:
                        single_alerts.extend(
                            single_lane.process_events(batch))
                    for event in batch:
                        if (coordinator is not None
                                and coordinator.maybe_hold(event)):
                            continue
                        position = route(event.agentid)
                        if supervisor is not None:
                            position = supervisor.reroute(event.agentid,
                                                          position)
                        if active[position]:
                            buffers[position].append(event)
                    for position, buffer in enumerate(buffers):
                        if (len(buffer) >= size
                                and not (coordinator is not None
                                         and coordinator.is_paused(
                                             position))):
                            flush_pending(position)
                    if coordinator is not None:
                        coordinator.after_batch(batch)
                    if supervisor is not None:
                        supervisor.after_batch(len(batch))
                    if checkpointer is not None:
                        checkpointer.observe_batch(batch)
                        if supervisor is not None:
                            supervisor.attempt(
                                checkpointer.maybe_checkpoint)
                        else:
                            checkpointer.maybe_checkpoint()
                if coordinator is not None:
                    if supervisor is not None:
                        while not supervisor.attempt(
                                lambda: coordinator.finalize(
                                    liveness=supervisor.liveness)):
                            pass
                    else:
                        coordinator.finalize()
                    self.migrations = coordinator.records
                for position in range(len(buffers)):
                    flush_pending(position)
                self.checkpoints_written = (
                    checkpointer.checkpoints_written
                    if checkpointer is not None else 0)
            finally:
                if supervisor is not None:
                    # Result collection starts: migrate recoveries are
                    # off (the stop sentinel below races any import).
                    supervisor.set_closing()
                for worker in workers:
                    worker.close()
            # Collect results before joining: a worker blocks on its
            # result put until the parent reads it.  The get is timed and
            # paired with a liveness check so a worker that died without
            # posting (OOM-kill, unpicklable result) fails the run instead
            # of hanging it.
            collected: Dict[int, Tuple[List[Alert], SchedulerStats]] = {}
            failures: List[str] = []
            remaining = set(range(len(workers)))
            if supervisor is not None:
                # Retired positions have no worker; their salvaged
                # alerts live parent-side.
                for position in list(remaining):
                    if isinstance(workers[position], _RetiredLane):
                        collected[position] = workers[position].finish()
                        remaining.discard(position)
            policy = self._supervision
            grace_budget = (policy.result_grace if policy is not None
                            else 5.0)
            waiter = DEFAULT_BACKOFF.waiter()
            grace: Optional[Backoff] = None
            while remaining:
                if early_done:
                    item = early_done.pop(0)
                else:
                    try:
                        item = out_queue.get(timeout=waiter.interval())
                    except queue.Empty:
                        dead = [position for position in remaining
                                if not workers[position].is_alive()]
                        if not dead:
                            if (supervisor is not None
                                    and waiter.elapsed
                                    > policy.probe_timeout + grace_budget):
                                # Alive but silent past every deadline: a
                                # wedged worker at end of stream.
                                for position in sorted(remaining):
                                    supervisor.recover(
                                        position, "hung",
                                        f"shard {position} did not post "
                                        "its result within "
                                        f"{waiter.elapsed:.1f}s")
                                    workers[position].close()
                                waiter.reset()
                            continue
                        # A dead worker's result may still sit in the
                        # pipe buffer; grant it a bounded grace to
                        # surface before declaring the shard lost.
                        if grace is None:
                            grace = DEFAULT_BACKOFF.waiter(grace_budget)
                        if not grace.expired:
                            continue
                        grace = None
                        for position in dead:
                            if supervisor is not None:
                                supervisor.recover(
                                    position, "dead",
                                    f"shard {position} worker exited "
                                    "before posting its result")
                                workers[position].close()
                            else:
                                failures.append(
                                    f"shard {position}: worker exited "
                                    "without posting a result")
                                remaining.discard(position)
                        waiter.reset()
                        continue
                if item[0] == "ctrl":
                    continue  # late answer from an already-settled drain
                _, index, generation, alerts, stats, error = item
                if (index not in remaining
                        or generation != getattr(workers[index],
                                                 "generation", 0)):
                    continue  # stale result from a replaced worker
                waiter.reset()
                grace = None
                if error is not None:
                    if supervisor is not None:
                        supervisor.recover(index, "error", error)
                        workers[index].close()
                        continue
                    failures.append(f"shard {index}: {error}")
                    remaining.discard(index)
                else:
                    remaining.discard(index)
                    collected[index] = (alerts, stats)
            for worker in workers:
                if worker.index in collected or not worker.is_alive():
                    worker.join()
            if failures:
                raise RuntimeError("sharded execution failed: "
                                   + "; ".join(sorted(failures)))
        except BaseException:
            # Abandon the run without leaking children: a worker blocked
            # on its unread result put — or still draining its in-queue —
            # would otherwise survive until interpreter exit.
            for worker in workers:
                worker.shutdown()
            raise
        finally:
            if supervisor is not None:
                self.recoveries = supervisor.records
        results = [collected[position] for position in range(len(workers))]
        if restored is not None:
            events_ingested += restored["cursor"]["events_ingested"]
        return self._finalize(results, single_lane, single_alerts,
                              events_ingested)
