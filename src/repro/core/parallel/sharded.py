"""The sharded parallel runtime: one scheduler per worker, split by agentid.

:class:`ShardedScheduler` partitions the enterprise stream by the (stable)
hash of each event's ``agentid`` and runs one full
:class:`~repro.core.scheduler.concurrent.ConcurrentQueryScheduler` per
shard, so many-query workloads scale across cores instead of being capped
by the single-process design.  Queries are routed by the static
shardability analysis (:mod:`repro.core.parallel.shardability`): host-local
queries are registered on every shard (a shard that never sees a query's
host simply never matches it), while queries that aggregate across hosts
fall back to a single-shard lane that observes the full stream.

Three interchangeable backends execute the shards:

* ``serial`` — shards run inline in the calling thread, in shard order.
  Fully deterministic, no threads or processes; the backend equivalence
  tests and Windows-constrained environments use this.
* ``thread`` — one :class:`ThreadShard` per shard, fed through bounded
  queues.  Schedulers share no state, so no locking is needed; the GIL
  limits the speedup, but the feeding/backpressure behaviour matches the
  process backend.
* ``process`` — one worker process per shard (``multiprocessing``).  Each
  worker compiles its own copy of the queries from source (compiled
  closures do not cross process boundaries), consumes event batches from a
  bounded queue, and ships its alerts and stats back at end of stream.

Shards are fed in batches (the batch ingestion path,
``process_events``) to amortize dispatch and serialization overhead.  After
the stream drains, per-shard alerts are merged into a single
deterministically-ordered stream — sorted by timestamp, query name, window
and payload — and per-shard ``SchedulerStats`` are merged into one
aggregate, so callers observe the same interface as the single-process
scheduler.
"""

from __future__ import annotations

import itertools
import multiprocessing
import queue
import threading
import zlib
from collections import Counter
from typing import (Any, Dict, Iterable, List, Mapping, Optional, Sequence,
                    Tuple, Union)

from repro.core.engine.alerts import Alert, AlertSink
from repro.core.language import ast, parse_query
from repro.core.parallel.shardability import (
    ShardabilityReport,
    analyze_shardability,
)
from repro.core.expr.values import compare_values
from repro.core.scheduler.compatibility import compatibility_signature
from repro.core.scheduler.concurrent import (
    ConcurrentQueryScheduler,
    SchedulerStats,
)
from repro.events.event import Event
from repro.events.stream import iter_batches

#: Default number of events per feed batch.
DEFAULT_BATCH_SIZE = 256

#: Default replay-prefix length (events) observed by ``shard_map="auto"``
#: before greedily bin-packing agentids onto shards.
DEFAULT_AUTO_PREFIX = 32768

#: Bound on in-flight batches per shard queue (backpressure for the
#: thread/process backends).
_QUEUE_DEPTH = 8

_BACKENDS = ("serial", "thread", "process")


def shard_index(agentid: str, shard_count: int) -> int:
    """Map a host to its shard with a stable, process-independent hash.

    ``zlib.crc32`` is used instead of ``hash()`` because the latter is
    randomized per interpreter (``PYTHONHASHSEED``), which would make shard
    assignment — and therefore per-shard stats — differ between runs.  The
    agentid is case-folded first: SAQL equality is case-insensitive, so a
    host-pinned query matches agentids differing only in case, and those
    events must land on the pin's shard.
    """
    return zlib.crc32(agentid.casefold().encode("utf-8")) % shard_count


def merge_stats(per_shard: Sequence[SchedulerStats],
                single_lane: Optional[SchedulerStats] = None
                ) -> SchedulerStats:
    """Merge per-shard statistics into one aggregate ``SchedulerStats``.

    Work counters (alerts, pattern evaluations, buffered events) are
    summed: they measure work actually performed and memory actually held,
    including the per-shard replicas of each group's shared buffer.
    ``queries`` and ``groups`` count *logical* queries/groups: the maximum
    across shards is taken (an exact figure when every shard registers the
    same query set, an upper bound when pinned queries are routed to their
    owner shard only — :class:`ShardedScheduler` overwrites both with the
    exact registration-time counts after a run) and the single-shard
    lane's are added.  ``peak_buffered_events`` sums the per-shard peaks,
    an upper bound on the true simultaneous peak (shards reach their peaks
    at different stream positions).  ``events_ingested`` sums per-lane
    ingestion; the sharded scheduler overwrites it with its own
    once-per-event count after a run.
    """
    merged = SchedulerStats()
    for stats in per_shard:
        merged.events_ingested += stats.events_ingested
        merged.alerts += stats.alerts
        merged.pattern_evaluations += stats.pattern_evaluations
        merged.pattern_evaluations_saved += stats.pattern_evaluations_saved
        merged.buffered_events += stats.buffered_events
        merged.peak_buffered_events += stats.peak_buffered_events
        merged.buffered_matches += stats.buffered_matches
        merged.peak_buffered_matches += stats.peak_buffered_matches
    if per_shard:
        merged.queries = max(stats.queries for stats in per_shard)
        merged.groups = max(stats.groups for stats in per_shard)
    if single_lane is not None:
        merged.events_ingested += single_lane.events_ingested
        merged.alerts += single_lane.alerts
        merged.pattern_evaluations += single_lane.pattern_evaluations
        merged.pattern_evaluations_saved += (
            single_lane.pattern_evaluations_saved)
        merged.buffered_events += single_lane.buffered_events
        merged.peak_buffered_events += single_lane.peak_buffered_events
        merged.buffered_matches += single_lane.buffered_matches
        merged.peak_buffered_matches += single_lane.peak_buffered_matches
        merged.queries += single_lane.queries
        merged.groups += single_lane.groups
    return merged


def _alert_sort_key(alert: Alert) -> Tuple:
    """Total order over alerts that does not depend on shard interleaving."""
    return (
        alert.timestamp,
        alert.query_name,
        alert.window_start if alert.window_start is not None else -1.0,
        repr(alert.group_key),
        repr(alert.data),
        alert.agentid,
    )


def _build_scheduler(queries: Sequence[Tuple[str, Union[str, ast.Query]]],
                     enable_sharing: bool) -> ConcurrentQueryScheduler:
    scheduler = ConcurrentQueryScheduler(enable_sharing=enable_sharing)
    for name, source in queries:
        scheduler.add_query(source, name=name)
    return scheduler


# ---------------------------------------------------------------------------
# Backends
# ---------------------------------------------------------------------------

class SerialShard:
    """In-process shard executed inline (deterministic test backend)."""

    def __init__(self, queries, enable_sharing: bool):
        self._scheduler = _build_scheduler(queries, enable_sharing)
        self._alerts: List[Alert] = []

    def feed(self, batch: List[Event]) -> None:
        self._alerts.extend(self._scheduler.process_events(batch))

    def finish(self) -> Tuple[List[Alert], SchedulerStats]:
        self._alerts.extend(self._scheduler.finish())
        return self._alerts, self._scheduler.stats


class ThreadShard:
    """In-process shard executed on its own thread.

    Each shard owns its scheduler outright, so no locking is required; the
    bounded queue provides the same backpressure as the process backend.
    """

    def __init__(self, queries, enable_sharing: bool):
        self._scheduler = _build_scheduler(queries, enable_sharing)
        self._alerts: List[Alert] = []
        self._queue: "queue.Queue[Optional[List[Event]]]" = queue.Queue(
            maxsize=_QUEUE_DEPTH)
        self._error: Optional[BaseException] = None
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()

    def _run(self) -> None:
        try:
            while True:
                batch = self._queue.get()
                if batch is None:
                    return
                self._alerts.extend(self._scheduler.process_events(batch))
        except BaseException as error:  # surfaced by feed()/finish()
            self._error = error

    def _put(self, item: Optional[List[Event]]) -> None:
        # A blocking put against a dead consumer would hang the stream
        # loop forever once the bounded queue fills, so surface the
        # thread's failure instead of waiting on it.
        while True:
            try:
                self._queue.put(item, timeout=0.1)
                return
            except queue.Full:
                if self._error is not None:
                    raise self._error
                if not self._thread.is_alive():
                    raise RuntimeError("shard thread exited mid-stream")

    def feed(self, batch: List[Event]) -> None:
        if self._error is not None:
            raise self._error
        self._put(batch)

    def finish(self) -> Tuple[List[Alert], SchedulerStats]:
        if self._thread.is_alive():
            self._put(None)
        self._thread.join()
        if self._error is not None:
            raise self._error
        self._alerts.extend(self._scheduler.finish())
        return self._alerts, self._scheduler.stats


def _process_shard_main(index: int,
                        queries: Sequence[Tuple[str, Union[str, ast.Query]]],
                        enable_sharing: bool,
                        in_queue: "multiprocessing.Queue",
                        out_queue: "multiprocessing.Queue") -> None:
    """Worker entry point: compile the queries, drain batches, report back."""
    try:
        scheduler = _build_scheduler(queries, enable_sharing)
        alerts: List[Alert] = []
        while True:
            batch = in_queue.get()
            if batch is None:
                break
            alerts.extend(scheduler.process_events(batch))
        alerts.extend(scheduler.finish())
        out_queue.put((index, alerts, scheduler.stats, None))
    except BaseException as error:
        out_queue.put((index, [], None,
                       f"{type(error).__name__}: {error}"))


class ProcessShard:
    """Shard executed in a worker process, fed through a bounded queue."""

    def __init__(self, index: int, queries, enable_sharing: bool,
                 context, out_queue):
        self.index = index
        self._in_queue = context.Queue(maxsize=_QUEUE_DEPTH)
        self._out_queue = out_queue
        self._process = context.Process(
            target=_process_shard_main,
            args=(index, list(queries), enable_sharing, self._in_queue,
                  out_queue),
            daemon=True)
        self._process.start()

    def feed(self, batch: List[Event]) -> None:
        # Same liveness rule as ThreadShard: a worker that died mid-stream
        # (its error tuple sits on the out queue) must not deadlock the
        # parent's feed loop once the bounded in-queue fills.
        while True:
            try:
                self._in_queue.put(batch, timeout=0.1)
                return
            except queue.Full:
                if not self._process.is_alive():
                    raise RuntimeError(
                        f"shard {self.index} worker exited mid-stream")

    def close(self) -> None:
        # The sentinel must actually arrive: silently dropping it on a
        # transiently full queue would leave the worker blocked on get()
        # and the parent blocked on the result collection, forever.
        while self._process.is_alive():
            try:
                self._in_queue.put(None, timeout=0.1)
                return
            except queue.Full:
                continue

    def is_alive(self) -> bool:
        return self._process.is_alive()

    def join(self) -> None:
        self._process.join()


# ---------------------------------------------------------------------------
# The sharded scheduler
# ---------------------------------------------------------------------------

class ShardedScheduler:
    """Executes many SAQL queries over one stream, sharded by ``agentid``.

    The public surface mirrors :class:`ConcurrentQueryScheduler`:
    ``add_query``/``add_queries`` to register, ``execute`` to run over a
    finite stream, ``alerts``/``stats`` afterwards.  Differences:

    * ``add_query`` returns the :class:`ShardabilityReport` for the query
      (also kept in :attr:`reports`) instead of a live engine — with the
      process backend the engines live in the workers.
    * ``execute`` returns the merged alert stream in a deterministic order
      (by timestamp, query, window, payload) that is independent of the
      backend and of shard interleaving.
    * :attr:`stats` is the merged aggregate; :attr:`per_shard_stats` and
      :attr:`single_lane_stats` expose the per-lane figures.
    """

    def __init__(self, shards: int = 4, backend: str = "serial",
                 sink: Optional[AlertSink] = None,
                 enable_sharing: bool = True,
                 batch_size: int = DEFAULT_BATCH_SIZE,
                 shard_map: Optional[Union[str, Mapping[str, int]]] = None,
                 auto_prefix: int = DEFAULT_AUTO_PREFIX):
        if shards < 1:
            raise ValueError("shard count must be at least 1")
        if backend not in _BACKENDS:
            raise ValueError(f"unknown backend {backend!r}; "
                             f"expected one of {_BACKENDS}")
        if batch_size < 1:
            raise ValueError("batch size must be at least 1")
        if auto_prefix < 1:
            raise ValueError("auto-map prefix must be at least 1 event")
        self.shards = shards
        self.backend = backend
        self._sink = sink
        self._enable_sharing = enable_sharing
        self._batch_size = batch_size
        # Load-aware assignment: None/"hash" = stable crc32 of the agentid;
        # "auto" = bin-pack by the event counts of a stream prefix at
        # execute() time; a mapping = explicit agentid -> shard overrides.
        if isinstance(shard_map, str) and shard_map not in ("auto", "hash"):
            raise ValueError(f"unknown shard map mode {shard_map!r}; "
                             "expected 'auto', 'hash' or an explicit "
                             "agentid -> shard mapping")
        self._shard_map: Optional[Union[str, Dict[str, int]]] = (
            None if shard_map == "hash" else
            shard_map if isinstance(shard_map, str) or shard_map is None
            else self._validated_map(shard_map))
        self._auto_prefix = auto_prefix
        #: The agentid -> shard overrides routing the current/last run
        #: (casefolded keys; None when pure hash routing is in effect).
        self.resolved_shard_map: Optional[Dict[str, int]] = (
            dict(self._shard_map)
            if isinstance(self._shard_map, dict) else None)
        #: (name, source, pinned agentid or None, compatibility signature)
        #: for queries routed to the sharded lane.
        self._sharded_queries: List[Tuple[str, Union[str, ast.Query],
                                          Optional[str], Any]] = []
        #: (name, source) pairs that must observe the full stream.
        self._single_lane_queries: List[Tuple[str, Union[str, ast.Query]]] = []
        #: query name -> shardability report, in registration order.
        self.reports: Dict[str, ShardabilityReport] = {}
        self._alerts: List[Alert] = []
        self._merged_stats = SchedulerStats()
        self.per_shard_stats: List[SchedulerStats] = []
        self.single_lane_stats: Optional[SchedulerStats] = None

    # -- registration ------------------------------------------------------

    def add_query(self, query: Union[str, ast.Query],
                  name: Optional[str] = None) -> ShardabilityReport:
        """Register one query; returns its shardability report."""
        parsed = parse_query(query) if isinstance(query, str) else query
        if name is None:
            # Workers run their own engine counters, so auto-names must be
            # assigned here to be identical on every shard.
            name = parsed.name or f"query-{len(self.reports) + 1}"
        if name in self.reports:
            raise ValueError(f"duplicate query name {name!r}")
        report = analyze_shardability(parsed)
        self.reports[name] = report
        source: Union[str, ast.Query] = (query if isinstance(query, str)
                                         else parsed)
        if report.shardable:
            self._sharded_queries.append(
                (name, source, report.pinned_agentid,
                 compatibility_signature(parsed)))
        else:
            self._single_lane_queries.append((name, source))
        return report

    def add_queries(self, queries: Iterable[Union[str, ast.Query]]) -> None:
        """Register several queries at once."""
        for query in queries:
            self.add_query(query)

    @property
    def sharded_query_names(self) -> List[str]:
        """Names of the queries running partitioned across the shards."""
        return [entry[0] for entry in self._sharded_queries]

    # -- load-aware shard assignment ---------------------------------------

    def _validated_map(self, mapping: Mapping[str, int]) -> Dict[str, int]:
        """Casefold and range-check an explicit agentid -> shard mapping."""
        validated: Dict[str, int] = {}
        for agentid, position in mapping.items():
            if not 0 <= int(position) < self.shards:
                raise ValueError(
                    f"shard map sends {agentid!r} to shard {position}, "
                    f"outside 0..{self.shards - 1}")
            key = str(agentid).casefold()
            known = validated.get(key)
            if known is not None and known != int(position):
                raise ValueError(
                    f"shard map entries for {agentid!r} collide after "
                    "casefolding (SAQL equality is case-insensitive) with "
                    "conflicting shard targets")
            validated[key] = int(position)
        return validated

    def set_shard_map(self, mapping: Mapping[str, int]) -> None:
        """Install an explicit agentid -> shard map for subsequent runs.

        Use with :meth:`plan_shard_map` when per-host event counts are
        known up front (e.g. from a replay's database statistics) instead
        of observing a stream prefix via ``shard_map="auto"``.
        """
        self._shard_map = self._validated_map(mapping)
        self.resolved_shard_map = dict(self._shard_map)

    def plan_shard_map(self, counts: Mapping[str, int]) -> Dict[str, int]:
        """Greedily bin-pack agentids onto shards by observed event count.

        Longest-processing-time packing: agentids are placed heaviest
        first onto the currently least-loaded shard, so one hot host (the
        ROADMAP's db-server example) no longer saturates the shard crc32
        happens to pick while others idle.  Agentids that satisfy a
        registered query's host pin under SAQL equality are clustered with
        that pin (they must share a shard for the pinned query to observe
        them); pins satisfied by a common agentid collapse into one
        cluster.  The result maps casefolded agentids — including the pin
        literals — to shard positions and is deterministic for equal
        counts (ties break by name, then shard position).
        """
        pins = sorted({pinned for _, _, pinned, _ in self._sharded_queries
                       if pinned is not None})
        # Union-find over pins: an agentid satisfying several pins welds
        # them into one cluster.
        leader = {pin: pin for pin in pins}

        def find(pin: str) -> str:
            while leader[pin] != pin:
                leader[pin] = leader[leader[pin]]
                pin = leader[pin]
            return pin

        cluster_members: Dict[str, List[str]] = {pin: [pin] for pin in pins}
        cluster_weight: Dict[str, int] = {pin: 0 for pin in pins}
        loose: List[Tuple[int, str]] = []
        for agentid in sorted(counts):
            weight = int(counts[agentid])
            matched = [pin for pin in pins
                       if compare_values("==", agentid, pin)]
            if not matched:
                loose.append((weight, agentid))
                continue
            root = find(matched[0])
            for pin in matched[1:]:
                other = find(pin)
                if other != root:
                    leader[other] = root
                    cluster_members[root].extend(cluster_members.pop(other))
                    cluster_weight[root] += cluster_weight.pop(other)
            cluster_members[root].append(agentid)
            cluster_weight[root] += weight
        items: List[Tuple[int, str, Tuple[str, ...]]] = [
            (cluster_weight[root], root, tuple(cluster_members[root]))
            for root in cluster_members
        ]
        items.extend((weight, agentid, (agentid,))
                     for weight, agentid in loose)
        # Heaviest first; name breaks ties so the plan is reproducible.
        items.sort(key=lambda item: (-item[0], item[1]))
        loads = [0] * self.shards
        plan: Dict[str, int] = {}
        for weight, _, members in items:
            if weight <= 0:
                # Pins whose hosts never appeared in the observed counts
                # carry no load signal; leaving them out of the plan keeps
                # the stable-hash routing, which spreads them, instead of
                # LPT piling every zero-weight cluster onto one shard.
                continue
            position = min(range(self.shards), key=lambda i: (loads[i], i))
            loads[position] += weight
            for member in members:
                plan[member.casefold()] = position
        return plan

    def _home_shard(self, agentid: str) -> int:
        """Return the shard routing ``agentid``: map override, else hash."""
        resolved = self.resolved_shard_map
        if resolved is not None:
            position = resolved.get(agentid.casefold())
            if position is not None:
                return position
        return shard_index(agentid, self.shards)

    def _resolve_auto_map(self,
                          stream: Iterable[Event]) -> Iterable[Event]:
        """Materialize the ``auto`` shard map from a stream prefix.

        Consumes up to ``auto_prefix`` events to count per-host load,
        plans the map, and hands back the prefix chained with the rest of
        the stream; re-planned on every run so the map tracks the stream
        actually being executed.
        """
        if self._shard_map == "auto":
            iterator = iter(stream)
            prefix = list(itertools.islice(iterator, self._auto_prefix))
            counts = Counter(event.agentid for event in prefix)
            self.resolved_shard_map = self.plan_shard_map(counts)
            return itertools.chain(prefix, iterator)
        return stream

    def _queries_for_shard(self, position: int) -> List[Tuple[str,
                                                              Union[str,
                                                                    ast.Query]]]:
        """Return the queries shard ``position`` must register.

        Host-pinned queries only ever match events of their pin's shard
        (the shard map decides which one that is), so they are routed
        there exclusively — other shards skip their groups (and the
        per-event constraint checks) entirely.  Unpinned host-local
        queries observe every host and register everywhere.
        """
        return [(name, source)
                for name, source, pinned, _ in self._sharded_queries
                if pinned is None
                or self._home_shard(pinned) == position]

    def _make_router(self):
        """Build the agentid -> shard routing function for one run.

        The default route is the stable hash (:func:`shard_index`), but a
        host-pinned query lives only on its pin's shard, and SAQL equality
        is looser than string identity: it case-folds, coerces numeric
        strings (``"7" == "7.0"``) and treats ``%``/``_`` on *either* side
        as LIKE wildcards.  An event whose agentid satisfies a pin under
        those semantics but hashes elsewhere would silently never reach the
        pinned query, so the router checks each distinct agentid against
        the pins with the engine's own equality and routes it to the
        satisfied pin's shard.  That stays host-consistent for the
        unpinned queries too (every event of one agentid takes one route).
        An agentid satisfying pins on *different* shards cannot be
        partitioned at all and fails loudly.  Distinct agentids are few,
        so the equality checks amortize through a cache.

        The default (non-pin) route consults the resolved shard map first
        (load-aware or explicit assignment), then the stable hash.  Every
        backend builds exactly ``self.shards`` lanes, which is what the
        home-shard helper routes over.
        """
        pins = sorted({(pinned, self._home_shard(pinned))
                       for _, _, pinned, _ in self._sharded_queries
                       if pinned is not None})
        cache: Dict[str, int] = {}

        def route(agentid: str) -> int:
            position = cache.get(agentid)
            if position is None:
                targets = {shard for pin, shard in pins
                           if compare_values("==", agentid, pin)}
                if len(targets) > 1:
                    raise RuntimeError(
                        f"agentid {agentid!r} satisfies host pins on "
                        "different shards under SAQL equality; this stream "
                        "cannot be partitioned — run with shards=1 or "
                        "disambiguate the host identifiers")
                if targets:
                    position = targets.pop()
                else:
                    position = self._home_shard(agentid)
                cache[agentid] = position
            return position

        return route

    def _logical_group_count(self) -> int:
        """Logical compatibility groups across the sharded lane's queries.

        Matches what one full scheduler would form over the same queries:
        one group per distinct compatibility signature under sharing, one
        per query without.
        """
        if not self._enable_sharing:
            return len(self._sharded_queries)
        return len({signature
                    for _, _, _, signature in self._sharded_queries})

    @property
    def single_lane_query_names(self) -> List[str]:
        """Names of the queries running on the full-stream fallback lane."""
        return [name for name, _ in self._single_lane_queries]

    # -- results -----------------------------------------------------------

    @property
    def alerts(self) -> List[Alert]:
        """Return the merged, deterministically-ordered alerts."""
        return list(self._alerts)

    @property
    def stats(self) -> SchedulerStats:
        """Return the merged aggregate statistics of the last run."""
        return self._merged_stats

    # -- execution ---------------------------------------------------------

    def execute(self, stream: Iterable[Event],
                batch_size: Optional[int] = None) -> List[Alert]:
        """Run all registered queries over a finite stream."""
        size = batch_size if batch_size is not None else self._batch_size
        if size < 1:
            raise ValueError("batch size must be at least 1")
        # Resolve the auto map before shards are built: pinned-query
        # registration depends on where the map homes each pin.
        stream = self._resolve_auto_map(stream)
        if self.backend == "process" and self._sharded_queries:
            alerts = self._execute_process(stream, size)
        else:
            alerts = self._execute_in_process(stream, size)
        alerts.sort(key=_alert_sort_key)
        self._alerts = alerts
        if self._sink is not None:
            for alert in alerts:
                self._sink.emit(alert)
        return list(alerts)

    def _single_lane_scheduler(self) -> Optional[ConcurrentQueryScheduler]:
        if not self._single_lane_queries:
            return None
        return _build_scheduler(self._single_lane_queries,
                                self._enable_sharing)

    def _finalize(self, shard_results: Sequence[Tuple[List[Alert],
                                                      SchedulerStats]],
                  single_lane: Optional[ConcurrentQueryScheduler],
                  single_alerts: List[Alert],
                  events_ingested: int) -> List[Alert]:
        alerts: List[Alert] = []
        self.per_shard_stats = []
        for shard_alerts, shard_stats in shard_results:
            alerts.extend(shard_alerts)
            self.per_shard_stats.append(shard_stats)
        self.single_lane_stats = None
        if single_lane is not None:
            single_alerts.extend(single_lane.finish())
            alerts.extend(single_alerts)
            self.single_lane_stats = single_lane.stats
        self._merged_stats = merge_stats(self.per_shard_stats,
                                         self.single_lane_stats)
        # Each stream event is ingested once by the sharded runtime, even
        # when the single-shard lane observed it as well; queries and
        # groups are the exact logical counts (pinned-query routing makes
        # the per-shard figures subsets).
        self._merged_stats.events_ingested = events_ingested
        single_queries = (self.single_lane_stats.queries
                          if self.single_lane_stats is not None else 0)
        single_groups = (self.single_lane_stats.groups
                         if self.single_lane_stats is not None else 0)
        self._merged_stats.queries = (len(self._sharded_queries)
                                      + single_queries)
        self._merged_stats.groups = (self._logical_group_count()
                                     + single_groups)
        return alerts

    def _execute_in_process(self, stream: Iterable[Event],
                            size: int) -> List[Alert]:
        """Run with the serial or thread backend (shards live in-process)."""
        shard_cls = ThreadShard if self.backend == "thread" else SerialShard
        shards: List[Any] = []
        active: List[bool] = []
        if self._sharded_queries:
            per_shard = [self._queries_for_shard(position)
                         for position in range(self.shards)]
            shards = [shard_cls(queries, self._enable_sharing)
                      for queries in per_shard]
            active = [bool(queries) for queries in per_shard]
        single_lane = self._single_lane_scheduler()
        single_alerts: List[Alert] = []
        buffers: List[List[Event]] = [[] for _ in range(len(shards))]
        route = self._make_router() if shards else None
        events_ingested = 0
        for batch in iter_batches(stream, size):
            events_ingested += len(batch)
            if single_lane is not None:
                single_alerts.extend(single_lane.process_events(batch))
            if not shards:
                continue
            for event in batch:
                position = route(event.agentid)
                # A shard every query was routed away from has nothing to
                # do with its slice of the stream.
                if active[position]:
                    buffers[position].append(event)
            for position, buffer in enumerate(buffers):
                if len(buffer) >= size:
                    shards[position].feed(buffer)
                    buffers[position] = []
        for position, buffer in enumerate(buffers):
            if buffer:
                shards[position].feed(buffer)
        results = [shard.finish() for shard in shards]
        return self._finalize(results, single_lane, single_alerts,
                              events_ingested)

    def _execute_process(self, stream: Iterable[Event],
                         size: int) -> List[Alert]:
        """Run with the multiprocessing backend (one worker per shard)."""
        context = multiprocessing.get_context()
        out_queue = context.Queue()
        per_shard = [self._queries_for_shard(position)
                     for position in range(self.shards)]
        workers = [ProcessShard(position, queries, self._enable_sharing,
                                context, out_queue)
                   for position, queries in enumerate(per_shard)]
        active = [bool(queries) for queries in per_shard]
        single_lane = self._single_lane_scheduler()
        single_alerts: List[Alert] = []
        buffers: List[List[Event]] = [[] for _ in workers]
        route = self._make_router()
        events_ingested = 0
        try:
            for batch in iter_batches(stream, size):
                events_ingested += len(batch)
                if single_lane is not None:
                    single_alerts.extend(single_lane.process_events(batch))
                for event in batch:
                    position = route(event.agentid)
                    if active[position]:
                        buffers[position].append(event)
                for position, buffer in enumerate(buffers):
                    if len(buffer) >= size:
                        workers[position].feed(buffer)
                        buffers[position] = []
            for position, buffer in enumerate(buffers):
                if buffer:
                    workers[position].feed(buffer)
        finally:
            for worker in workers:
                worker.close()
        # Collect results before joining: a worker blocks on its result put
        # until the parent reads it.  The get is timed and paired with a
        # liveness check so a worker that died without posting (OOM-kill,
        # unpicklable result) fails the run instead of hanging it.
        collected: Dict[int, Tuple[List[Alert], SchedulerStats]] = {}
        failures: List[str] = []
        remaining = set(range(len(workers)))
        dead_patience = 0
        while remaining:
            try:
                index, alerts, stats, error = out_queue.get(timeout=0.5)
            except queue.Empty:
                dead = [position for position in remaining
                        if not workers[position].is_alive()]
                if dead:
                    # A dead worker's result may still sit in the pipe
                    # buffer; give it a few more timed gets before
                    # declaring the shard lost.
                    dead_patience += 1
                    if dead_patience >= 10:
                        for position in dead:
                            failures.append(f"shard {position}: worker "
                                            "exited without posting a "
                                            "result")
                            remaining.discard(position)
                continue
            dead_patience = 0
            remaining.discard(index)
            if error is not None:
                failures.append(f"shard {index}: {error}")
            else:
                collected[index] = (alerts, stats)
        for worker in workers:
            if worker.index in collected or not worker.is_alive():
                worker.join()
        if failures:
            raise RuntimeError("sharded execution failed: "
                               + "; ".join(sorted(failures)))
        results = [collected[position] for position in range(len(workers))]
        return self._finalize(results, single_lane, single_alerts,
                              events_ingested)
