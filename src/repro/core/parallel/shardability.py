"""Shardability analysis: when may a query run partitioned by ``agentid``?

The sharded runtime partitions the enterprise stream by the hash of each
event's ``agentid`` and runs one full scheduler per shard.  That is only
correct for queries whose *unit of state* is host-local — i.e. every group
of events that must be observed together to produce one alert originates
from a single host, and therefore lands on a single shard.  This module
decides that property statically, from the query AST, so the sharded
scheduler can route host-local queries to the shards and fall back to
single-shard (full-stream) execution for everything else.

The rules, in order:

1. **Host-pinned queries are always shardable.**  A global constraint
   ``agentid = "xxx"`` restricts the stream slice the query observes to one
   host; all of its state lives on the shard that owns that host.

2. **Cluster queries are not shardable** (unless host-pinned).  The
   ``cluster(...)`` clause peer-compares *all* groups of a window; when the
   groups span hosts, a shard would cluster over an incomplete peer set.

3. **Stateful queries are shardable iff every group-by key is host-local.**
   A group-by expression is host-local when equal key values imply equal
   hosts: the ``host`` or ``entity_id`` attribute of a process/file entity
   variable (those identities embed the originating host —
   ``proc:<host>:<pid>:<exe>``), a bare event alias (which the group-key
   semantics resolve to the event's ``agentid``), or an explicit
   ``agentid`` attribute reference.  Note that a *bare entity variable*
   resolves through the paper's context-aware shortcut to its default
   attribute (``p`` is ``p.exe_name``, ``f`` is ``f.name``, ``i`` is
   ``i.dstip``) — values that repeat across hosts — so ``group by p``
   without a host pin aggregates the same executable on every host into
   one group and must run single-shard, exactly like ``group by i.dstip``.
   A key additionally only counts as host-local when *every* pattern's
   matches bind it (an entity variable must appear in every pattern; an
   alias key requires a single-pattern query): a match evaluates group
   keys against its own bindings only, so a variable another pattern does
   not bind folds that pattern's matches into one cross-host ``None``
   group.  A stateful query with no ``group by`` folds the whole stream
   into one group and is likewise not shardable.

4. **Rule queries are shardable iff their patterns are connected through
   shared host-scoped entity variables** (and the return clause is not
   ``distinct``).  The multievent matcher joins pattern matches on entity
   identity; a process/file variable shared by two patterns therefore
   forces both matched events onto the same host.  If every pattern is
   transitively linked this way, complete sequences are host-local.
   Patterns linked only by temporal order (or by a shared *network*
   variable) can mix events from different hosts, so such queries run
   single-shard.  ``return distinct`` deduplicates across sequences with a
   query-global seen-set; without a host pin that set would be split across
   shards, so those queries also run single-shard.

These rules rest on one data invariant, which the collection layer
maintains: process and file entities are created host-scoped
(``ProcessEntity.make``/``FileEntity.make`` embed the host in
``entity_id``), matching the ``agentid`` of the events that carry them.
Aliasing between agentid spellings under SAQL's loose equality (case
folding, numeric coercion, LIKE wildcards on either side) is handled at
runtime by the sharded scheduler's router, which checks each distinct
agentid against the registered pins with the engine's own equality; the
one unsupported shape — an agentid satisfying pins on different shards —
fails loudly instead of partitioning incorrectly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.core.language import ast

#: Entity types whose identity embeds the originating host.
_HOST_SCOPED_ENTITY_TYPES = frozenset({"proc", "file"})


@dataclass(frozen=True)
class ShardabilityReport:
    """The outcome of analyzing one query for agentid-sharded execution."""

    #: True when the query may run partitioned by ``agentid``.
    shardable: bool
    #: Human-readable justification (surfaced by benchmarks and the CLI).
    reason: str
    #: The host the query is pinned to, when rule 1 applied.
    pinned_agentid: Optional[str] = None
    #: True when an agentid feeding this query may migrate between shards
    #: mid-stream at a window-aligned safe point (see
    #: :func:`analyze_steal_safety`).  Meaningless when not shardable.
    steal_safe: bool = False
    #: Human-readable justification for :attr:`steal_safe`.
    steal_reason: str = ""
    #: Window-boundary granularity (seconds) a migration cut must align
    #: to for this query, or None when any cut time is safe (stateless
    #: single-pattern rule queries).  The sharded runtime cuts at a common
    #: multiple of every steal-safe query's alignment.
    steal_alignment: Optional[int] = None


def _pinned_agentid(query: ast.Query) -> Optional[str]:
    """Return the agentid a global equality constraint pins, if any."""
    for constraint in query.global_constraints:
        if constraint.attr == "agentid" and constraint.op in ("=", "=="):
            value = str(constraint.value)
            # LIKE wildcards match many hosts; only a literal value pins.
            if "%" not in value and "_" not in value:
                return value
    return None


def _variable_bound_by_every_pattern(name: str, query: ast.Query) -> bool:
    """Return True when every pattern's matches bind the variable ``name``.

    The group key of a match only sees that match's own bindings: a
    variable declared in pattern 1 evaluates to None on pattern 2's
    matches, which would silently fold those matches into one cross-host
    ``None`` group.  A key is therefore only trustworthy when every
    pattern binds it.
    """
    return all(name in (pattern.subject.variable, pattern.object.variable)
               for pattern in query.patterns)


def _alias_names_every_pattern(name: str, query: ast.Query) -> bool:
    """Return True when ``name`` is the alias of every pattern.

    Alias-based keys resolve to the event's agentid only on matches of the
    pattern carrying that alias; other patterns' matches get None.  Aliases
    are unique per pattern, so this holds exactly for single-pattern
    queries keyed by their own alias.
    """
    return all(pattern.alias == name for pattern in query.patterns)


def _is_host_local_key(expr: ast.Expression, query: ast.Query) -> bool:
    """Return True when equal values of this group-by key imply equal hosts."""
    if isinstance(expr, ast.Identifier):
        if expr.name in query.entity_variables:
            # The context-aware shortcut resolves a bare entity variable to
            # its default attribute (exe_name / name / dstip): values that
            # repeat across hosts, so never host-local.
            return False
        # A bare event alias resolves to the event's agentid.
        return (expr.name in query.pattern_aliases
                and _alias_names_every_pattern(expr.name, query))
    if isinstance(expr, ast.AttributeRef) and isinstance(expr.base,
                                                         ast.Identifier):
        base = expr.base.name
        declaration = query.entity_variables.get(base)
        if declaration is not None:
            return (declaration.entity_type in _HOST_SCOPED_ENTITY_TYPES
                    and expr.attr in ("host", "entity_id")
                    and _variable_bound_by_every_pattern(base, query))
        if base in query.pattern_aliases:
            return (expr.attr == "agentid"
                    and _alias_names_every_pattern(base, query))
    return False


def _patterns_host_connected(query: ast.Query) -> bool:
    """Return True when shared host-scoped variables link every pattern."""
    patterns = query.patterns
    if len(patterns) <= 1:
        return True
    # Union-find over patterns, merging via shared host-scoped variables.
    parent = list(range(len(patterns)))

    def find(index: int) -> int:
        while parent[index] != index:
            parent[index] = parent[parent[index]]
            index = parent[index]
        return index

    owner: Dict[str, int] = {}
    for index, pattern in enumerate(patterns):
        for declaration in (pattern.subject, pattern.object):
            if declaration.entity_type not in _HOST_SCOPED_ENTITY_TYPES:
                continue
            variable = declaration.variable
            if variable in owner:
                parent[find(owner[variable])] = find(index)
            else:
                owner[variable] = index
    roots = {find(index) for index in range(len(patterns))}
    return len(roots) == 1


def analyze_steal_safety(query: ast.Query
                         ) -> Tuple[bool, str, Optional[int]]:
    """Decide whether an agentid feeding this query may migrate mid-stream.

    Work stealing moves an agentid from one shard to another at a *cut
    time* ``C``: events below the cut stay with the donor, events at or
    above it reach the thief (after the donor confirms its open windows
    have drained).  That reproduces the single-scheduler alerts exactly
    only when no per-host state spans the cut, which this function checks
    statically.  Returns ``(steal_safe, reason, alignment)`` where
    ``alignment`` is the window granularity (seconds) cut times must be a
    multiple of (None when any cut is safe).

    The rules:

    * **Stateless single-pattern rule queries** hold no cross-event state
      — any cut is safe.
    * **Multi-pattern rule queries** keep partial sequences in flight; a
      partial opened on the donor could only complete with events the
      thief now observes, so such queries pin their hosts in place.
    * **Stateful queries** are safe when their window is a time window
      with ``hop >= length`` (tumbling or gapped: a cut at a hop multiple
      is crossed by no window) and integral-second hop (hop multiples are
      float-exact, so the router's cut comparison agrees bit-for-bit with
      the assigner's window containment), the state history is 1 (``ss[k]``
      history would be left behind on the donor), and there is no
      invariant (training accumulates per group across windows) and no
      ``return distinct`` (the seen-set stays on the donor).  Overlapping
      sliding windows (hop < length) cover every instant, so no cut
      avoids splitting a window; count windows close on per-engine match
      ordinals, which a migration would split.
    """
    if query.state is None:
        if len(query.patterns) > 1:
            return (False, "multi-pattern rule query keeps partial "
                           "sequences in flight across a cut", None)
        if query.returns is not None and query.returns.distinct:
            return (False, "return distinct keeps a per-engine seen-set "
                           "that a migration would leave on the donor",
                    None)
        return (True, "single-pattern rule query holds no cross-event "
                      "state; any cut is safe", None)

    if query.invariant is not None:
        return (False, "invariant models train per group across windows; "
                       "a migration would split training", None)
    if query.cluster is not None:
        return (False, "cluster clause peer-compares a window's groups; "
                       "a migration would split the peer set", None)
    if query.returns is not None and query.returns.distinct:
        return (False, "return distinct keeps a per-engine seen-set that "
                       "a migration would leave on the donor", None)
    if query.state.history > 1:
        return (False, f"state history of {query.state.history} windows "
                       "reads past windows that would be left on the "
                       "donor", None)
    window = query.window
    if window is None:
        return (False, "stateful query without a window folds the whole "
                       "stream into one never-closing state", None)
    if window.kind != "time":
        return (False, "count windows close on per-engine match ordinals, "
                       "which a migration would split", None)
    hop = window.effective_hop
    if hop < window.length:
        return (False, "overlapping sliding windows cover every instant; "
                       "no cut time avoids splitting a window", None)
    if not float(hop).is_integer():
        return (False, "fractional-second hop has no float-exact cut "
                       "boundary", None)
    return (True, "tumbling/gapped time window with history 1: a cut at "
                  "a hop multiple is crossed by no window",
            int(hop))


def analyze_shardability(query: ast.Query) -> ShardabilityReport:
    """Decide statically whether a query may run sharded by ``agentid``."""
    pinned = _pinned_agentid(query)
    if pinned is not None:
        # A pinned query lives only on its pin's shard and filters other
        # hosts through its global constraint, so migrating *other*
        # agentids cannot touch its state; the pinned agentid itself is
        # never stolen (the balancer excludes pin-satisfying hosts).
        return ShardabilityReport(
            shardable=True,
            reason=f"host-pinned by global constraint agentid = {pinned!r}",
            pinned_agentid=pinned,
            steal_safe=True,
            steal_reason="host-pinned: registered only on the pin's shard; "
                         "migrations of other agentids cannot affect it")

    if query.cluster is not None:
        return ShardabilityReport(
            shardable=False,
            reason="cluster clause peer-compares groups across hosts")

    steal_safe, steal_reason, steal_alignment = analyze_steal_safety(query)

    if query.state is not None:
        group_by = query.state.group_by
        if not group_by:
            return ShardabilityReport(
                shardable=False,
                reason="stateful query without group by folds all hosts "
                       "into one group")
        for expr in group_by:
            if not _is_host_local_key(expr, query):
                return ShardabilityReport(
                    shardable=False,
                    reason="group-by key is not host-local; groups may "
                           "aggregate events from several hosts")
        return ShardabilityReport(
            shardable=True,
            reason="every group-by key is host-local, so each group's "
                   "state lives on one shard",
            steal_safe=steal_safe,
            steal_reason=steal_reason,
            steal_alignment=steal_alignment)

    if query.returns is not None and query.returns.distinct:
        return ShardabilityReport(
            shardable=False,
            reason="return distinct deduplicates across hosts without a "
                   "host pin")
    if _patterns_host_connected(query):
        return ShardabilityReport(
            shardable=True,
            reason="patterns are connected through shared host-scoped "
                   "entity variables, so sequences are host-local",
            steal_safe=steal_safe,
            steal_reason=steal_reason,
            steal_alignment=steal_alignment)
    return ShardabilityReport(
        shardable=False,
        reason="patterns are not linked by shared host-scoped variables; "
               "sequences may mix events from several hosts")
