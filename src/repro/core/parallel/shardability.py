"""Shardability analysis: when may a query run partitioned by ``agentid``?

The sharded runtime partitions the enterprise stream by the hash of each
event's ``agentid`` and runs one full scheduler per shard.  That is only
correct for queries whose *unit of state* is host-local — i.e. every group
of events that must be observed together to produce one alert originates
from a single host, and therefore lands on a single shard.  This module
decides that property statically, from the query AST, so the sharded
scheduler can route host-local queries to the shards and fall back to
single-shard (full-stream) execution for everything else.

The rules, in order:

1. **Host-pinned queries are always shardable.**  A global constraint
   ``agentid = "xxx"`` restricts the stream slice the query observes to one
   host; all of its state lives on the shard that owns that host.

2. **Cluster queries are not shardable** (unless host-pinned).  The
   ``cluster(...)`` clause peer-compares *all* groups of a window; when the
   groups span hosts, a shard would cluster over an incomplete peer set.

3. **Stateful queries are shardable iff every group-by key is host-local.**
   A group-by expression is host-local when equal key values imply equal
   hosts: the ``host`` or ``entity_id`` attribute of a process/file entity
   variable (those identities embed the originating host —
   ``proc:<host>:<pid>:<exe>``), a bare event alias (which the group-key
   semantics resolve to the event's ``agentid``), or an explicit
   ``agentid`` attribute reference.  Note that a *bare entity variable*
   resolves through the paper's context-aware shortcut to its default
   attribute (``p`` is ``p.exe_name``, ``f`` is ``f.name``, ``i`` is
   ``i.dstip``) — values that repeat across hosts — so ``group by p``
   without a host pin aggregates the same executable on every host into
   one group and must run single-shard, exactly like ``group by i.dstip``.
   A key additionally only counts as host-local when *every* pattern's
   matches bind it (an entity variable must appear in every pattern; an
   alias key requires a single-pattern query): a match evaluates group
   keys against its own bindings only, so a variable another pattern does
   not bind folds that pattern's matches into one cross-host ``None``
   group.  A stateful query with no ``group by`` folds the whole stream
   into one group and is likewise not shardable.

4. **Rule queries are shardable iff their patterns are connected through
   shared host-scoped entity variables** (and the return clause is not
   ``distinct``).  The multievent matcher joins pattern matches on entity
   identity; a process/file variable shared by two patterns therefore
   forces both matched events onto the same host.  If every pattern is
   transitively linked this way, complete sequences are host-local.
   Patterns linked only by temporal order (or by a shared *network*
   variable) can mix events from different hosts, so such queries run
   single-shard.  ``return distinct`` deduplicates across sequences with a
   query-global seen-set; without a host pin that set would be split across
   shards, so those queries also run single-shard.

These rules rest on one data invariant, which the collection layer
maintains: process and file entities are created host-scoped
(``ProcessEntity.make``/``FileEntity.make`` embed the host in
``entity_id``), matching the ``agentid`` of the events that carry them.
Aliasing between agentid spellings under SAQL's loose equality (case
folding, numeric coercion, LIKE wildcards on either side) is handled at
runtime by the sharded scheduler's router, which checks each distinct
agentid against the registered pins with the engine's own equality; the
one unsupported shape — an agentid satisfying pins on different shards —
fails loudly instead of partitioning incorrectly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.core.language import ast

#: Entity types whose identity embeds the originating host.
_HOST_SCOPED_ENTITY_TYPES = frozenset({"proc", "file"})


@dataclass(frozen=True)
class ShardabilityReport:
    """The outcome of analyzing one query for agentid-sharded execution."""

    #: True when the query may run partitioned by ``agentid``.
    shardable: bool
    #: Human-readable justification (surfaced by benchmarks and the CLI).
    reason: str
    #: The host the query is pinned to, when rule 1 applied.
    pinned_agentid: Optional[str] = None
    #: True when an agentid feeding this query may migrate between shards
    #: mid-stream (see :func:`analyze_steal_safety`).  Meaningless when
    #: not shardable.
    steal_safe: bool = False
    #: Human-readable justification for :attr:`steal_safe`.
    steal_reason: str = ""
    #: Window-boundary granularity (seconds) a migration cut must align
    #: to for this query, or None when any cut time is safe (stateless
    #: single-pattern rule queries).  Only meaningful in ``aligned`` mode;
    #: the sharded runtime cuts at a common multiple of every aligned
    #: query's alignment.
    steal_alignment: Optional[int] = None
    #: How a migration stays correct for this query: ``"aligned"`` — a
    #: window-aligned cut plus drain-and-wait suffices (no per-host state
    #: spans the cut); ``"transfer"`` — the donor must export the
    #: victim's state slice to the thief (sliding windows, state
    #: histories, partial sequences, ``distinct`` seen-sets); ``None`` —
    #: the host may not migrate at all.
    steal_mode: Optional[str] = None


def _pinned_agentid(query: ast.Query) -> Optional[str]:
    """Return the agentid a global equality constraint pins, if any."""
    for constraint in query.global_constraints:
        if constraint.attr == "agentid" and constraint.op in ("=", "=="):
            value = str(constraint.value)
            # LIKE wildcards match many hosts; only a literal value pins.
            if "%" not in value and "_" not in value:
                return value
    return None


def _variable_bound_by_every_pattern(name: str, query: ast.Query) -> bool:
    """Return True when every pattern's matches bind the variable ``name``.

    The group key of a match only sees that match's own bindings: a
    variable declared in pattern 1 evaluates to None on pattern 2's
    matches, which would silently fold those matches into one cross-host
    ``None`` group.  A key is therefore only trustworthy when every
    pattern binds it.
    """
    return all(name in (pattern.subject.variable, pattern.object.variable)
               for pattern in query.patterns)


def _alias_names_every_pattern(name: str, query: ast.Query) -> bool:
    """Return True when ``name`` is the alias of every pattern.

    Alias-based keys resolve to the event's agentid only on matches of the
    pattern carrying that alias; other patterns' matches get None.  Aliases
    are unique per pattern, so this holds exactly for single-pattern
    queries keyed by their own alias.
    """
    return all(pattern.alias == name for pattern in query.patterns)


def _is_host_local_key(expr: ast.Expression, query: ast.Query) -> bool:
    """Return True when equal values of this group-by key imply equal hosts."""
    if isinstance(expr, ast.Identifier):
        if expr.name in query.entity_variables:
            # The context-aware shortcut resolves a bare entity variable to
            # its default attribute (exe_name / name / dstip): values that
            # repeat across hosts, so never host-local.
            return False
        # A bare event alias resolves to the event's agentid.
        return (expr.name in query.pattern_aliases
                and _alias_names_every_pattern(expr.name, query))
    if isinstance(expr, ast.AttributeRef) and isinstance(expr.base,
                                                         ast.Identifier):
        base = expr.base.name
        declaration = query.entity_variables.get(base)
        if declaration is not None:
            return (declaration.entity_type in _HOST_SCOPED_ENTITY_TYPES
                    and expr.attr in ("host", "entity_id")
                    and _variable_bound_by_every_pattern(base, query))
        if base in query.pattern_aliases:
            return (expr.attr == "agentid"
                    and _alias_names_every_pattern(base, query))
    return False


def _patterns_host_connected(query: ast.Query) -> bool:
    """Return True when shared host-scoped variables link every pattern."""
    patterns = query.patterns
    if len(patterns) <= 1:
        return True
    # Union-find over patterns, merging via shared host-scoped variables.
    parent = list(range(len(patterns)))

    def find(index: int) -> int:
        while parent[index] != index:
            parent[index] = parent[parent[index]]
            index = parent[index]
        return index

    owner: Dict[str, int] = {}
    for index, pattern in enumerate(patterns):
        for declaration in (pattern.subject, pattern.object):
            if declaration.entity_type not in _HOST_SCOPED_ENTITY_TYPES:
                continue
            variable = declaration.variable
            if variable in owner:
                parent[find(owner[variable])] = find(index)
            else:
                owner[variable] = index
    roots = {find(index) for index in range(len(patterns))}
    return len(roots) == 1


def analyze_steal_safety(query: ast.Query
                         ) -> Tuple[Optional[str], str, Optional[int]]:
    """Decide whether (and how) a host feeding this query may migrate.

    Work stealing moves an agentid from one shard to another at a *cut*:
    events below the cut stay with the donor, events at or above it reach
    the thief.  That reproduces the single-scheduler alerts exactly only
    when no per-host state is marooned on the donor.  Two mechanisms
    achieve it, decided statically here; the function returns
    ``(mode, reason, alignment)``:

    * ``"aligned"`` — no per-host state *spans* a suitably chosen cut, so
      a window-aligned cut plus the drain-and-wait handoff suffices and
      nothing is copied.  Holds for stateless single-pattern rule queries
      (any cut; alignment ``None``) and for history-1 tumbling/gapped
      integral-hop time windows (alignment = the hop: a cut at a hop
      multiple is crossed by no window, and integral hops make the cut
      comparison float-exact).
    * ``"transfer"`` — per-host state necessarily spans every cut, but it
      is *extractable*: on stealable (host-local) lanes every window
      bucket, pane partial, state history and partial sequence belongs to
      exactly one host, so the donor exports the victim's slice through
      the snapshot codecs and the thief imports it before receiving the
      victim's held events.  Covers overlapping sliding windows,
      fractional hops, ``state[k]`` histories, multi-pattern sequences
      and ``return distinct`` (the seen-set is copied; host-local group
      keys make cross-host collisions impossible).
    * ``None`` — the host may not migrate.  Count windows close on
      per-engine match ordinals across *all* hosts of the shard, so the
      victim's window boundaries depend on the donor's interleave and no
      transferable slice reproduces them; invariant training and cluster
      peer sets likewise couple a window's groups to engine-global
      progress the thief cannot reproduce; a windowless state block never
      closes at all.
    """
    if query.state is None:
        if len(query.patterns) > 1:
            return ("transfer", "multi-pattern rule query keeps partial "
                                "sequences in flight; the donor exports "
                                "the victim's partials across the cut",
                    None)
        if query.returns is not None and query.returns.distinct:
            return ("transfer", "return distinct keeps a per-engine "
                                "seen-set; the donor's entries are copied "
                                "to the thief", None)
        return ("aligned", "single-pattern rule query holds no "
                           "cross-event state; any cut is safe", None)

    if query.invariant is not None:
        return (None, "invariant models train per group across windows; "
                      "a migration would split training", None)
    if query.cluster is not None:
        return (None, "cluster clause peer-compares a window's groups; "
                      "a migration would split the peer set", None)
    window = query.window
    if window is None:
        return (None, "stateful query without a window folds the whole "
                      "stream into one never-closing state", None)
    if window.kind != "time":
        return (None, "count windows close on per-engine match ordinals "
                      "over every host of the shard; the victim's window "
                      "boundaries cannot be reproduced on the thief", None)
    hop = window.effective_hop
    needs_transfer = []
    if query.returns is not None and query.returns.distinct:
        needs_transfer.append("a distinct seen-set")
    if query.state.history > 1:
        needs_transfer.append(
            f"a state history of {query.state.history} windows")
    if hop < window.length:
        needs_transfer.append("overlapping sliding windows that cover "
                              "every instant")
    elif not float(hop).is_integer():
        needs_transfer.append("a fractional-second hop with no "
                              "float-exact cut boundary")
    if needs_transfer:
        return ("transfer", "per-host state spans any cut ("
                + "; ".join(needs_transfer)
                + "); the donor exports the victim's slice", None)
    return ("aligned", "tumbling/gapped time window with history 1: a "
                       "cut at a hop multiple is crossed by no window",
            int(hop))


def analyze_shardability(query: ast.Query) -> ShardabilityReport:
    """Decide statically whether a query may run sharded by ``agentid``."""
    pinned = _pinned_agentid(query)
    if pinned is not None:
        # A pinned query lives only on its pin's shard and filters other
        # hosts through its global constraint, so migrating *other*
        # agentids cannot touch its state; the pinned agentid itself is
        # never stolen (the balancer excludes pin-satisfying hosts).
        return ShardabilityReport(
            shardable=True,
            reason=f"host-pinned by global constraint agentid = {pinned!r}",
            pinned_agentid=pinned,
            steal_safe=True,
            steal_reason="host-pinned: registered only on the pin's shard; "
                         "migrations of other agentids cannot affect it",
            steal_mode="aligned")

    if query.cluster is not None:
        return ShardabilityReport(
            shardable=False,
            reason="cluster clause peer-compares groups across hosts")

    steal_mode, steal_reason, steal_alignment = analyze_steal_safety(query)

    if query.state is not None:
        if query.window is not None and query.window.kind != "time":
            # Count windows batch every N matches by the *engine-global*
            # match ordinal: the events of every host on the shard advance
            # one shared counter, so per-shard counters draw different
            # window boundaries than the single scheduler and the window
            # contents diverge (even with host-local groups).
            return ShardabilityReport(
                shardable=False,
                reason="count windows close on the engine-global match "
                       "ordinal, which per-shard execution would split")
        group_by = query.state.group_by
        if not group_by:
            return ShardabilityReport(
                shardable=False,
                reason="stateful query without group by folds all hosts "
                       "into one group")
        for expr in group_by:
            if not _is_host_local_key(expr, query):
                return ShardabilityReport(
                    shardable=False,
                    reason="group-by key is not host-local; groups may "
                           "aggregate events from several hosts")
        return ShardabilityReport(
            shardable=True,
            reason="every group-by key is host-local, so each group's "
                   "state lives on one shard",
            steal_safe=steal_mode is not None,
            steal_reason=steal_reason,
            steal_alignment=steal_alignment,
            steal_mode=steal_mode)

    if query.returns is not None and query.returns.distinct:
        return ShardabilityReport(
            shardable=False,
            reason="return distinct deduplicates across hosts without a "
                   "host pin")
    if _patterns_host_connected(query):
        return ShardabilityReport(
            shardable=True,
            reason="patterns are connected through shared host-scoped "
                   "entity variables, so sequences are host-local",
            steal_safe=steal_mode is not None,
            steal_reason=steal_reason,
            steal_alignment=steal_alignment,
            steal_mode=steal_mode)
    return ShardabilityReport(
        shardable=False,
        reason="patterns are not linked by shared host-scoped variables; "
               "sequences may mix events from several hosts")
