"""Shard supervision policy (crash/hang detection and in-run recovery).

The sharded runtime (:mod:`repro.core.parallel.sharded`) waits on other
workers in several places: the stealing coordinator's end-of-stream
handshake, the checkpointer's snapshot collection, the process backend's
result collection, and — with supervision enabled — liveness probes and
in-run recovery.  Every one of those wait loops paces itself through the
shared deadline/backoff waiter in :mod:`repro.core.retry` (hoisted there
so the always-on service's sink retries reuse it; ``BackoffPolicy`` /
``Backoff`` / ``DEFAULT_BACKOFF`` are re-exported here for
compatibility).  This module keeps the supervision-specific pieces:

* :class:`SupervisionPolicy` — the shard supervisor's tunables: probe
  cadence, hang/feed deadlines, the per-shard recovery budget and the
  recovery mode (checkpoint restart vs. migrate-to-survivors).
* :class:`ShardFailure` — the typed failure every shard backend raises
  when a worker is discovered dead or unresponsive, carrying the shard
  position and a ``reason`` the supervisor keys its recovery on.
* :class:`RecoveryRecord` — one completed in-run recovery, for stats,
  tests and the fault-recovery benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.core.retry import DEFAULT_BACKOFF, Backoff, BackoffPolicy

#: Reasons a shard failure can carry (ShardFailure.reason).
FAILURE_REASONS = ("dead", "hung", "error", "retired")

#: Recovery modes a SupervisionPolicy can request.
RECOVERY_MODES = ("auto", "restart", "migrate")


class ShardFailure(RuntimeError):
    """A shard worker died, hung, or raised while processing its stream.

    Subclasses ``RuntimeError`` so callers that predate supervision (and
    tests matching the historical fail-fast behaviour) keep working; the
    supervisor additionally reads :attr:`position` and :attr:`reason` to
    pick a recovery path.
    """

    def __init__(self, position: int, reason: str, message: str):
        super().__init__(message)
        self.position = position
        self.reason = reason


@dataclass(frozen=True)
class SupervisionPolicy:
    """Tunables for the shard supervisor (crash/hang detection, recovery).

    * ``probe_interval`` — routed events between liveness probes
      (``("ping", seq)`` control messages answered in feed order).
    * ``probe_timeout`` — seconds an unanswered probe may age before the
      shard is declared hung.  Probes queue behind real batches, so this
      bounds *processing* latency, not just transport latency; size it
      to several worst-case batch times.
    * ``feed_timeout`` — seconds a feed/control enqueue may block on a
      full queue against a live worker before the shard counts as hung.
    * ``result_grace`` — seconds a worker discovered dead during result
      collection is given for its already-posted result to surface from
      the queue's pipe buffer.
    * ``max_recoveries`` — in-run recoveries allowed per shard; the run
      fails once a shard exceeds it (a deterministic poison event would
      otherwise restart forever).
    * ``recovery`` — ``"auto"`` restarts from the last per-shard
      checkpoint when one exists and migrates the shard's agentids to
      the survivors otherwise; ``"restart"`` / ``"migrate"`` force one
      path (migrate still falls back to restart when the lane is not
      state-transfer eligible, the shard hosts pinned queries, or no
      survivor remains).
    * ``backoff`` — pacing for the supervisor's own wait loops.
    """

    probe_interval: int = 4096
    probe_timeout: float = 10.0
    feed_timeout: float = 10.0
    result_grace: float = 5.0
    max_recoveries: int = 3
    recovery: str = "auto"
    backoff: BackoffPolicy = field(default_factory=BackoffPolicy)

    def __post_init__(self):
        if self.probe_interval < 1:
            raise ValueError("probe interval must be at least 1 event")
        if self.probe_timeout <= 0 or self.feed_timeout <= 0:
            raise ValueError("supervision timeouts must be positive")
        if self.result_grace <= 0:
            raise ValueError("result grace must be positive")
        if self.max_recoveries < 1:
            raise ValueError("at least one recovery must be allowed")
        if self.recovery not in RECOVERY_MODES:
            raise ValueError(f"unknown recovery mode {self.recovery!r}; "
                             f"expected one of {RECOVERY_MODES}")


@dataclass(frozen=True)
class RecoveryRecord:
    """One completed in-run shard recovery (stats / benchmarks / tests)."""

    #: Shard position that failed.
    position: int
    #: Why the supervisor intervened: "dead", "hung" or "error".
    reason: str
    #: How it recovered: "restart" (rebuild + checkpoint restore + backlog
    #: replay) or "migrate" (state moved to surviving shards).
    mode: str
    #: Events replayed from the supervisor-held backlog.
    events_replayed: int
    #: Wall-clock seconds from detection to the shard serving again.
    latency: float
    #: Backend the run used ("serial", "thread", "process").
    backend: str
    #: True when the rebuilt shard restored a checkpoint slice first
    #: (restart mode with a checkpoint available).
    restored_checkpoint: bool = False
    #: Agentids whose state moved to survivors (migrate mode).
    migrated_agentids: Tuple[str, ...] = ()
