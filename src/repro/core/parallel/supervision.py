"""Shard supervision policy and the shared deadline/backoff helper.

The sharded runtime (:mod:`repro.core.parallel.sharded`) waits on other
workers in several places: the stealing coordinator's end-of-stream
handshake, the checkpointer's snapshot collection, the process backend's
result collection, and — with supervision enabled — liveness probes and
in-run recovery.  Historically each of those sites carried its own
fixed-sleep polling loop with its own hard-coded patience constant; this
module centralizes them behind one tunable policy:

* :class:`BackoffPolicy` / :class:`Backoff` — a deadline-aware waiter
  with exponential backoff and deterministic jitter.  Every wait loop in
  the sharded runtime paces itself through one of these, so hang
  detection and crash detection share a single knob instead of a zoo of
  sleep constants.
* :class:`SupervisionPolicy` — the shard supervisor's tunables: probe
  cadence, hang/feed deadlines, the per-shard recovery budget and the
  recovery mode (checkpoint restart vs. migrate-to-survivors).
* :class:`ShardFailure` — the typed failure every shard backend raises
  when a worker is discovered dead or unresponsive, carrying the shard
  position and a ``reason`` the supervisor keys its recovery on.
* :class:`RecoveryRecord` — one completed in-run recovery, for stats,
  tests and the fault-recovery benchmark.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Optional, Tuple

#: Reasons a shard failure can carry (ShardFailure.reason).
FAILURE_REASONS = ("dead", "hung", "error", "retired")

#: Recovery modes a SupervisionPolicy can request.
RECOVERY_MODES = ("auto", "restart", "migrate")


class ShardFailure(RuntimeError):
    """A shard worker died, hung, or raised while processing its stream.

    Subclasses ``RuntimeError`` so callers that predate supervision (and
    tests matching the historical fail-fast behaviour) keep working; the
    supervisor additionally reads :attr:`position` and :attr:`reason` to
    pick a recovery path.
    """

    def __init__(self, position: int, reason: str, message: str):
        super().__init__(message)
        self.position = position
        self.reason = reason


@dataclass(frozen=True)
class BackoffPolicy:
    """Tunables for one family of wait loops.

    ``initial`` is the first sleep quantum, growing by ``factor`` up to
    ``maximum``; ``jitter`` spreads each quantum by up to +/- that
    fraction so many parents polling the same queues do not phase-lock.
    The jitter stream is seeded per waiter, keeping runs reproducible.
    """

    initial: float = 0.002
    maximum: float = 0.25
    factor: float = 2.0
    jitter: float = 0.25

    def __post_init__(self):
        if self.initial <= 0 or self.maximum < self.initial:
            raise ValueError("backoff needs 0 < initial <= maximum")
        if self.factor < 1.0:
            raise ValueError("backoff factor must be at least 1.0")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("backoff jitter must be in [0, 1)")

    def waiter(self, deadline: Optional[float] = None,
               seed: int = 0) -> "Backoff":
        """Build a fresh waiter; ``deadline`` is seconds from now (None =
        no deadline, the waiter never expires)."""
        return Backoff(self, deadline, seed)


class Backoff:
    """One wait loop's pacing state: deadline tracking plus backoff.

    Use :meth:`interval` to time a blocking ``get(timeout=...)``, or
    :meth:`wait` to sleep in a pure polling loop; call :meth:`reset` when
    the loop observes progress so the next wait starts short again.
    """

    def __init__(self, policy: BackoffPolicy, deadline: Optional[float],
                 seed: int = 0):
        self._policy = policy
        self._deadline = deadline
        self._started = time.monotonic()
        self._interval = policy.initial
        self._random = random.Random(seed)

    @property
    def elapsed(self) -> float:
        """Seconds since the waiter was created or last reset."""
        return time.monotonic() - self._started

    def remaining(self) -> Optional[float]:
        """Seconds until the deadline (None when there is no deadline)."""
        if self._deadline is None:
            return None
        return self._deadline - self.elapsed

    @property
    def expired(self) -> bool:
        """True once the deadline has passed (never, without one)."""
        remaining = self.remaining()
        return remaining is not None and remaining <= 0.0

    def reset(self) -> None:
        """Restart both the deadline clock and the backoff ramp.

        Call on observed progress: the waited-for peer is alive, so the
        deadline should measure silence, not total elapsed time.
        """
        self._started = time.monotonic()
        self._interval = self._policy.initial

    def interval(self) -> float:
        """Return the next wait quantum (jittered, deadline-capped).

        Advances the backoff ramp.  Returns a small positive value even
        at the deadline edge so ``Queue.get(timeout=...)`` callers never
        pass zero; pair with :attr:`expired` to decide when to give up.
        """
        base = self._interval
        self._interval = min(self._interval * self._policy.factor,
                             self._policy.maximum)
        spread = self._policy.jitter * (2.0 * self._random.random() - 1.0)
        quantum = base * (1.0 + spread)
        remaining = self.remaining()
        if remaining is not None:
            quantum = min(quantum, max(remaining, 0.0))
        return max(quantum, 1e-4)

    def wait(self) -> bool:
        """Sleep one backoff quantum; False when the deadline has passed.

        The caller's loop shape is ``while not done: if not waiter.wait():
        raise Timeout``; the sleep never overshoots the deadline.
        """
        if self.expired:
            return False
        time.sleep(self.interval())
        return True


#: The default pacing shared by every wait loop in the sharded runtime.
DEFAULT_BACKOFF = BackoffPolicy()


@dataclass(frozen=True)
class SupervisionPolicy:
    """Tunables for the shard supervisor (crash/hang detection, recovery).

    * ``probe_interval`` — routed events between liveness probes
      (``("ping", seq)`` control messages answered in feed order).
    * ``probe_timeout`` — seconds an unanswered probe may age before the
      shard is declared hung.  Probes queue behind real batches, so this
      bounds *processing* latency, not just transport latency; size it
      to several worst-case batch times.
    * ``feed_timeout`` — seconds a feed/control enqueue may block on a
      full queue against a live worker before the shard counts as hung.
    * ``result_grace`` — seconds a worker discovered dead during result
      collection is given for its already-posted result to surface from
      the queue's pipe buffer.
    * ``max_recoveries`` — in-run recoveries allowed per shard; the run
      fails once a shard exceeds it (a deterministic poison event would
      otherwise restart forever).
    * ``recovery`` — ``"auto"`` restarts from the last per-shard
      checkpoint when one exists and migrates the shard's agentids to
      the survivors otherwise; ``"restart"`` / ``"migrate"`` force one
      path (migrate still falls back to restart when the lane is not
      state-transfer eligible, the shard hosts pinned queries, or no
      survivor remains).
    * ``backoff`` — pacing for the supervisor's own wait loops.
    """

    probe_interval: int = 4096
    probe_timeout: float = 10.0
    feed_timeout: float = 10.0
    result_grace: float = 5.0
    max_recoveries: int = 3
    recovery: str = "auto"
    backoff: BackoffPolicy = field(default_factory=BackoffPolicy)

    def __post_init__(self):
        if self.probe_interval < 1:
            raise ValueError("probe interval must be at least 1 event")
        if self.probe_timeout <= 0 or self.feed_timeout <= 0:
            raise ValueError("supervision timeouts must be positive")
        if self.result_grace <= 0:
            raise ValueError("result grace must be positive")
        if self.max_recoveries < 1:
            raise ValueError("at least one recovery must be allowed")
        if self.recovery not in RECOVERY_MODES:
            raise ValueError(f"unknown recovery mode {self.recovery!r}; "
                             f"expected one of {RECOVERY_MODES}")


@dataclass(frozen=True)
class RecoveryRecord:
    """One completed in-run shard recovery (stats / benchmarks / tests)."""

    #: Shard position that failed.
    position: int
    #: Why the supervisor intervened: "dead", "hung" or "error".
    reason: str
    #: How it recovered: "restart" (rebuild + checkpoint restore + backlog
    #: replay) or "migrate" (state moved to surviving shards).
    mode: str
    #: Events replayed from the supervisor-held backlog.
    events_replayed: int
    #: Wall-clock seconds from detection to the shard serving again.
    latency: float
    #: Backend the run used ("serial", "thread", "process").
    backend: str
    #: True when the rebuilt shard restored a checkpoint slice first
    #: (restart mode with a checkpoint available).
    restored_checkpoint: bool = False
    #: Agentids whose state moved to survivors (migrate mode).
    migrated_agentids: Tuple[str, ...] = ()
