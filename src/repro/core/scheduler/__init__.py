"""Concurrent query scheduling with the master-dependent-query scheme.

Section II-C of the paper: concurrent queries are divided into groups based
on their semantic compatibility; each group has one *master* query with
direct access to the data stream and several *dependent* queries whose
execution reuses the master's intermediate results, so that the group
shares a single copy of the stream data.
"""

from repro.core.scheduler.compatibility import (
    CompatibilitySignature,
    compatibility_signature,
    pattern_signature,
)
from repro.core.scheduler.concurrent import (
    ConcurrentQueryScheduler,
    QueryGroup,
    SchedulerStats,
    ShardLoadReport,
)

__all__ = [
    "CompatibilitySignature",
    "ConcurrentQueryScheduler",
    "QueryGroup",
    "SchedulerStats",
    "ShardLoadReport",
    "compatibility_signature",
    "pattern_signature",
]
