"""Semantic-compatibility signatures for query grouping.

Two queries are *semantically compatible* — and can therefore share one
copy of the stream data under one master query — when they agree on

* the query-wide (global) constraints, which decide which slice of the
  stream the queries observe (e.g. both pinned to the database server's
  ``agentid``), and
* the sliding-window specification, which decides how that slice is
  buffered for stateful computation.

Individual event patterns additionally get a *pattern signature* so a
dependent query can pick up the master's match result for any pattern the
two queries share, and only match its remaining patterns itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.core.language import ast


@dataclass(frozen=True)
class CompatibilitySignature:
    """Hashable signature deciding which group a query belongs to."""

    global_constraints: Tuple[Tuple[str, str, str], ...]
    window: Optional[Tuple[str, float, float]]


def compatibility_signature(query: ast.Query) -> CompatibilitySignature:
    """Compute the grouping signature of a query."""
    constraints = tuple(sorted(
        (constraint.attr, constraint.op, str(constraint.value))
        for constraint in query.global_constraints))
    window = query.window
    window_signature: Optional[Tuple[str, float, float]] = None
    if window is not None:
        window_signature = (window.kind, float(window.length),
                            float(window.effective_hop))
    return CompatibilitySignature(global_constraints=constraints,
                                  window=window_signature)


def _entity_signature(decl: ast.EntityDeclaration) -> Tuple:
    constraints = tuple(sorted(
        (constraint.attr or "", constraint.op, str(constraint.value))
        for constraint in decl.constraints))
    return (decl.entity_type, constraints)


def pattern_signature(pattern: ast.EventPatternDeclaration) -> Tuple:
    """Compute the signature of one event pattern.

    Two patterns with the same signature match exactly the same events, so
    a dependent query can reuse its master's match outcome for them (the
    variable names and alias may differ; they are rebound per query).
    """
    return (
        _entity_signature(pattern.subject),
        tuple(sorted(pattern.operations)),
        _entity_signature(pattern.object),
    )
