"""The concurrent query scheduler (master-dependent-query scheme).

The scheduler owns a set of :class:`~repro.core.engine.query_engine.QueryEngine`
instances and executes them over one event stream.  Queries are grouped by
their :func:`~repro.core.scheduler.compatibility.compatibility_signature`;
each group keeps a single shared buffer of the stream slice it observes
("a single copy of the stream data"), the group's *master* query matches
events against its patterns, and every *dependent* query reuses the
master's match results for the patterns they share.

The scheduler also keeps the accounting the paper's efficiency argument is
about: how many per-query copies of stream data exist (one per group under
sharing versus one per query without), and how many pattern-match
evaluations were saved by reuse.
"""

from __future__ import annotations

import time
from collections import Counter, deque
from dataclasses import asdict, dataclass, field
from time import perf_counter
from typing import (Any, Deque, Dict, Iterable, List, Mapping, Optional,
                    Sequence, Set, Tuple, Union)

from repro.core.compile.columnar import (
    BatchPredicateContext,
    ColumnBlock,
    SharedPredicateIndex,
    build_group_plan,
)
from repro.core.engine.alerts import Alert, AlertSink
from repro.core.engine.error_reporter import ErrorReporter
from repro.core.engine.matching import PatternMatch
from repro.core.engine.query_engine import QueryEngine
from repro.core.language import ast, parse_query
from repro.core.scheduler.compatibility import (
    CompatibilitySignature,
    compatibility_signature,
    pattern_signature,
)
from repro.events.event import Event
from repro.events.stream import iter_batches
from repro.obs import MetricRegistry, StageTimers

#: Default retention (seconds) of the per-group shared event buffer when the
#: group's queries declare no window.
DEFAULT_BUFFER_SECONDS = 600.0

#: Default smallest batch the columnar path will pivot into a
#: :class:`~repro.core.compile.columnar.ColumnBlock`.  Below this, block
#: construction and bitmap bookkeeping cost more than the per-event
#: closures they replace (the batch_size=1 degenerate case would pay a
#: block build per event), so tiny batches fall back to the closure path.
DEFAULT_COLUMNAR_MIN_BATCH = 16

#: Per-group batch times at or above this (seconds) enter the ring-buffered
#: slow-query log (``slow_queries()``; the service surfaces it in
#: ``stats()``).  Pass ``slow_query_threshold=None`` to disable the log.
DEFAULT_SLOW_QUERY_THRESHOLD = 0.25

#: Entries the slow-query ring buffer retains (oldest evicted first).
SLOW_QUERY_LOG_DEPTH = 64


@dataclass
class SchedulerStats:
    """Aggregate accounting for one scheduler run."""

    events_ingested: int = 0
    queries: int = 0
    groups: int = 0
    alerts: int = 0
    #: Pattern-match evaluations actually performed.
    pattern_evaluations: int = 0
    #: Pattern-match evaluations avoided by master-result reuse.
    pattern_evaluations_saved: int = 0
    #: Events currently retained across all shared group buffers.
    buffered_events: int = 0
    #: Peak of :attr:`buffered_events` over the run.
    peak_buffered_events: int = 0
    #: Matches currently retained for window state across all engines
    #: (buffered aggregation stores each match once per containing window;
    #: incremental aggregation keeps one representative per open bucket
    #: group).  Sampled at batch boundaries and at finish.
    buffered_matches: int = 0
    #: Sum of the per-engine peaks of retained state matches — an upper
    #: bound on the true simultaneous peak.
    peak_buffered_matches: int = 0
    #: Only populated on merged sharded stats: sum of the per-lane
    #: ``peak_buffered_events`` figures.  The per-lane peaks occur at
    #: different stream positions, so this is an explicit *upper bound* on
    #: the true simultaneous peak; the serial/thread backends additionally
    #: sample the genuine concurrent figure into
    #: :attr:`peak_buffered_events`, while the process backend (whose
    #: shard buffers live in other processes) leaves the peak equal to
    #: this bound.
    peak_buffered_events_bound: int = 0
    #: Only populated on merged sharded stats: sum of the per-lane
    #: ``peak_buffered_matches`` figures (see
    #: :attr:`peak_buffered_events_bound` for the bound-vs-sampled split).
    peak_buffered_matches_bound: int = 0
    #: Distinct predicates in the shared predicate index (columnar mode):
    #: structurally-equal predicates across all registered queries
    #: canonicalize to one entry each.  0 until the columnar plans build
    #: (first columnar batch) and under ``columnar=False``.
    distinct_predicates: int = 0
    #: Column cells actually evaluated by the shared predicate kernels.
    predicate_evaluations: int = 0
    #: Column cells *not* evaluated because the predicate's selection
    #: vector is shared: an atom with k subscribing query slots is
    #: evaluated once per batch, saving (k-1) evaluations per cell.
    predicate_evaluations_saved: int = 0
    #: Column blocks built (one per columnar-processed batch; tiny batches
    #: below the columnar threshold fall back to the closure path and
    #: build none).
    column_blocks_built: int = 0
    #: Per-predicate sharing/selectivity detail, refreshed at batch
    #: boundaries and finish: label -> {subscribers, rows_evaluated,
    #: rows_selected}.  Merged across shards by summing rows (subscribers:
    #: max across shards, summed with the single lane's).
    predicate_sharing: Dict[str, Dict[str, int]] = field(
        default_factory=dict)
    #: Queries quarantined by the fault-isolation circuit-breaker:
    #: query name -> fatal error count when the breaker tripped.  Empty
    #: unless the scheduler was built with ``quarantine_errors``; merged
    #: across shards by union (max count on collision).
    quarantined: Dict[str, int] = field(default_factory=dict)
    #: Registry snapshot (``repro.obs``) piggybacked on the existing stats
    #: rounds: set by :meth:`ConcurrentQueryScheduler.finish` (shard
    #: lanes' ``finish()``/"done" messages already ship their stats, so
    #: the metrics ride along) and merged across lanes by
    #: :func:`repro.core.parallel.sharded.merge_stats`.  ``None`` when
    #: metrics are disabled; deliberately stripped from durable
    #: checkpoints (timing histograms are nondeterministic and would
    #: break snapshot round-trip determinism).
    metrics_snapshot: Optional[Dict[str, Any]] = field(
        default=None, repr=False, compare=False)

    @property
    def quarantined_queries(self) -> int:
        """How many queries the circuit-breaker has quarantined."""
        return len(self.quarantined)

    @property
    def data_copies(self) -> int:
        """Stream copies kept under the master-dependent scheme (one per group)."""
        return self.groups

    @property
    def data_copies_without_sharing(self) -> int:
        """Stream copies a copy-per-query execution would keep."""
        return self.queries


@dataclass(frozen=True)
class ShardLoadReport:
    """One scheduler's ingest load since the previous report (one epoch).

    The sharded runtime's work-stealing balancer collects one report per
    shard at each rebalance epoch: ``events_by_agentid`` names the hosts
    whose events this scheduler ingested and how many each contributed,
    ``total_events`` is their sum, and ``watermark`` is the largest event
    timestamp seen over the scheduler's whole run (not just the epoch).
    Produced by :meth:`ConcurrentQueryScheduler.take_load_report`, which
    resets the per-epoch counters.
    """

    events_by_agentid: Mapping[str, int]
    total_events: int
    watermark: float


class QueryGroup:
    """One compatibility group: a master query plus its dependent queries.

    Pattern signatures and per-pattern operation sets are computed once, at
    registration time; the per-event path only walks pre-built dispatch
    plans (the seed recomputed :func:`pattern_signature` for every pattern
    of every query on every event).
    """

    def __init__(self, signature: CompatibilitySignature,
                 master: QueryEngine):
        self.signature = signature
        self.master = master
        self.dependents: List[QueryEngine] = []
        # Per-pattern plan entries: (pattern, signature, operation set,
        # compiled pattern or None).  The compiled reference avoids
        # re-hashing the AST declaration per event in the dispatch loop.
        self._master_plan: Tuple[Tuple[ast.EventPatternDeclaration, Tuple,
                                       frozenset, Any], ...] = tuple(
            (pattern, pattern_signature(pattern),
             frozenset(pattern.operations),
             _compiled_pattern_for(master, pattern))
            for pattern in master.query.patterns)
        self._master_signatures = {
            entry[1]: entry[0] for entry in self._master_plan
        }
        # Dependent plans, parallel to self.dependents: per pattern either
        # the master signature to reuse (shared) or None (evaluate).
        self._dependent_plans: List[Tuple[Tuple[
            ast.EventPatternDeclaration, Optional[Tuple], frozenset,
            Any], ...]] = []
        #: Union of every operation any pattern of the group can accept.
        self.operations: frozenset = frozenset(
            operation for entry in self._master_plan for operation in entry[2])
        buffer_seconds = DEFAULT_BUFFER_SECONDS
        if signature.window is not None:
            buffer_seconds = max(signature.window[1], signature.window[2])
        self._buffer_seconds = buffer_seconds
        #: The group's single shared copy of the (filtered) stream data.
        self.shared_buffer: Deque[Event] = deque()
        #: Columnar execution plan, built lazily against the scheduler's
        #: shared predicate index and invalidated (released) by the
        #: scheduler whenever the group's membership changes.
        self.columnar_plan = None

    @property
    def engines(self) -> List[QueryEngine]:
        """Return the master followed by the dependent engines."""
        return [self.master] + self.dependents

    def add(self, engine: QueryEngine) -> None:
        """Add a dependent query to the group."""
        self.dependents.append(engine)
        plan = []
        operations = set(self.operations)
        for pattern in engine.query.patterns:
            signature = pattern_signature(pattern)
            shared = signature if signature in self._master_signatures else None
            pattern_operations = frozenset(pattern.operations)
            operations.update(pattern_operations)
            plan.append((pattern, shared, pattern_operations,
                         _compiled_pattern_for(engine, pattern)))
        self._dependent_plans.append(tuple(plan))
        self.operations = frozenset(operations)

    def remove_dependent(self, engine: QueryEngine) -> None:
        """Drop one dependent query (and its plan) from the group."""
        position = next(index for index, dependent
                        in enumerate(self.dependents)
                        if dependent is engine)
        del self.dependents[position]
        del self._dependent_plans[position]
        operations = set(
            operation for entry in self._master_plan
            for operation in entry[2])
        for plan in self._dependent_plans:
            for entry in plan:
                operations.update(entry[2])
        self.operations = frozenset(operations)

    # -- execution ------------------------------------------------------------

    def process_event(self, event: Event,
                      stats: SchedulerStats) -> List[Alert]:
        """Process one stream event through every query of the group."""
        alerts: List[Alert] = []

        # The master query has direct access to the data stream: it applies
        # the group's shared global constraints and matches its patterns.
        master_matcher = self.master.matcher.pattern_matcher
        if not master_matcher.passes_global_constraints(event):
            return alerts

        stats.buffered_events += self._retain(event)

        operation = event.operation.value
        master_matches = []
        matched_by_signature: Dict[Tuple, PatternMatch] = {}
        for pattern, signature, pattern_operations, compiled in self._master_plan:
            if operation not in pattern_operations:
                continue
            stats.pattern_evaluations += 1
            if compiled is not None:
                match = compiled.match_accepted_operation(event)
            else:
                match = master_matcher.match_pattern(event, pattern)
            if match is not None:
                master_matches.append(match)
                matched_by_signature[signature] = match
        alerts.extend(self.master.process_matches(event, master_matches))

        # Dependent queries reuse the master's intermediate results for every
        # pattern they share with it and only evaluate their own remainder.
        for engine, plan in zip(self.dependents, self._dependent_plans):
            dependent_matches: List[PatternMatch] = []
            for pattern, shared, pattern_operations, compiled in plan:
                if operation not in pattern_operations:
                    continue
                if shared is not None:
                    stats.pattern_evaluations_saved += 1
                    match = matched_by_signature.get(shared)
                    if match is not None:
                        dependent_matches.append(_rebind(match, pattern))
                    continue
                stats.pattern_evaluations += 1
                if compiled is not None:
                    match = compiled.match_accepted_operation(event)
                else:
                    match = engine.matcher.pattern_matcher.match_pattern(
                        event, pattern)
                if match is not None:
                    dependent_matches.append(match)
            alerts.extend(engine.process_matches(event, dependent_matches))
        return alerts

    def advance_watermark(self, event: Event,
                          stats: SchedulerStats) -> List[Alert]:
        """Offer an event the group's patterns cannot match.

        The operation-indexed scheduler routes such events here instead of
        :meth:`process_event`: no pattern is evaluated, but the group still
        applies its global constraints, retains the event in the shared
        buffer and advances every engine's watermark (with an empty match
        list), so windows that are already past in event time close — and
        alert — with the same latency as under unindexed dispatch.
        """
        if not self.retain_only(event, stats):
            return []
        return self.advance_engines(event)

    def retain_only(self, event: Event, stats: SchedulerStats) -> bool:
        """Apply global constraints and buffer the event; no watermarks.

        Returns True when the event passed the group's constraints (and was
        therefore retained).  The batch ingestion path uses this to keep the
        shared-buffer accounting exact per event while deferring the
        per-engine watermark advance to the batch tail.
        """
        master_matcher = self.master.matcher.pattern_matcher
        if not master_matcher.passes_global_constraints(event):
            return False
        stats.buffered_events += self._retain(event)
        return True

    def advance_engines(self, event: Event) -> List[Alert]:
        """Advance every engine's watermark with an empty match list."""
        alerts: List[Alert] = []
        alerts.extend(self.master.process_matches(event, ()))
        for engine in self.dependents:
            alerts.extend(engine.process_matches(event, ()))
        return alerts

    def process_events(self, events: Sequence[Event],
                       stats: SchedulerStats) -> List[Alert]:
        """Process a timestamp-ordered batch of events through the group.

        The batch path restructures :meth:`process_event`'s work to
        amortize dispatch overhead: constraints, retention and the master's
        pattern matching still run per event (that is genuine per-event
        work), but each engine is then invoked once per batch through
        :meth:`~repro.core.engine.query_engine.QueryEngine.process_match_batch`
        instead of once per event, collapsing the per-event engine call
        chain.  Alert contents, per-engine alert order and the pattern
        evaluation accounting are identical to per-event dispatch.
        """
        master_matcher = self.master.matcher.pattern_matcher
        passes = master_matcher.passes_global_constraints
        operations = self.operations
        # Per accepted event: (event, master matches, matches by signature).
        # The signature dict is None when the event's operation is accepted
        # by no pattern of the group — dependents then skip their plan scan
        # entirely, mirroring the per-event watermark-advance path.
        accepted: List[Tuple[Event, List[PatternMatch],
                             Optional[Dict[Tuple, PatternMatch]]]] = []
        evaluations = 0
        for event in events:
            if not passes(event):
                continue
            stats.buffered_events += self._retain(event)
            operation = event.operation.value
            if operation not in operations:
                accepted.append((event, [], None))
                continue
            master_matches: List[PatternMatch] = []
            matched_by_signature: Dict[Tuple, PatternMatch] = {}
            for pattern, signature, pattern_operations, compiled in (
                    self._master_plan):
                if operation not in pattern_operations:
                    continue
                evaluations += 1
                if compiled is not None:
                    match = compiled.match_accepted_operation(event)
                else:
                    match = master_matcher.match_pattern(event, pattern)
                if match is not None:
                    master_matches.append(match)
                    matched_by_signature[signature] = match
            accepted.append((event, master_matches, matched_by_signature))
        stats.pattern_evaluations += evaluations
        if not accepted:
            return []

        alerts = self.master.process_match_batch(
            [(event, matches) for event, matches, _ in accepted])
        for engine, plan in zip(self.dependents, self._dependent_plans):
            engine_matcher = engine.matcher.pattern_matcher
            pairs: List[Tuple[Event, List[PatternMatch]]] = []
            saved = 0
            evaluations = 0
            for event, _, matched_by_signature in accepted:
                dependent_matches: List[PatternMatch] = []
                if matched_by_signature is not None:
                    operation = event.operation.value
                    for pattern, shared, pattern_operations, compiled in plan:
                        if operation not in pattern_operations:
                            continue
                        if shared is not None:
                            saved += 1
                            match = matched_by_signature.get(shared)
                            if match is not None:
                                dependent_matches.append(
                                    _rebind(match, pattern))
                            continue
                        evaluations += 1
                        if compiled is not None:
                            match = compiled.match_accepted_operation(event)
                        else:
                            match = engine_matcher.match_pattern(event,
                                                                 pattern)
                        if match is not None:
                            dependent_matches.append(match)
                pairs.append((event, dependent_matches))
            stats.pattern_evaluations_saved += saved
            stats.pattern_evaluations += evaluations
            alerts.extend(engine.process_match_batch(pairs))
        return alerts

    def process_events_columnar(self, block: ColumnBlock,
                                context: BatchPredicateContext,
                                stats: SchedulerStats) -> List[Alert]:
        """Process one column block through the group (columnar fast path).

        Behaviourally identical to :meth:`process_events` over
        ``block.events`` — same alerts, same per-engine alert order, same
        retention and same ``pattern_evaluations``/``_saved`` accounting
        (the counters keep their *logical* per-pattern meaning so the two
        modes stay comparable; the physical work is tracked by the
        ``predicate_*`` counters) — but predicates are evaluated through
        the batch context's shared selection vectors: each distinct
        predicate once per batch, across every query of every group.
        """
        plan = self.columnar_plan
        events = block.events
        global_bitmap = context.global_filter(plan)
        operations = self.operations
        # Accepted events (passing globals) in batch order, mirroring the
        # closure path's skeleton: rows whose operation no pattern of the
        # group accepts carry None instead of a signature dict, so
        # dependents skip them (the watermark-advance shape).
        accepted: List[Tuple[Event, List[PatternMatch],
                             Optional[Dict[Tuple, PatternMatch]]]] = []
        entry_for_row: List[Optional[int]] = [None] * block.size
        retained = 0
        operation_values = block.operation_values
        for row in context.selected_rows(plan, global_bitmap):
            event = events[row]
            retained += self._retain(event)
            if operation_values[row] in operations:
                entry_for_row[row] = len(accepted)
                accepted.append((event, [], {}))
            else:
                accepted.append((event, [], None))
        stats.buffered_events += retained
        if not accepted:
            return []

        evaluations = 0
        for pattern_plan in plan.master:
            evaluations += len(context.candidate_rows(
                pattern_plan.operations, plan, global_bitmap))
            alias = pattern_plan.alias
            subject_var = pattern_plan.subject_var
            object_var = pattern_plan.object_var
            signature = pattern_plan.signature
            for row in context.pattern_rows(pattern_plan, plan,
                                            global_bitmap):
                event = events[row]
                match = PatternMatch(
                    alias=alias, event=event,
                    bindings={subject_var: event.subject,
                              object_var: event.obj})
                entry = accepted[entry_for_row[row]]
                entry[1].append(match)
                entry[2][signature] = match
        stats.pattern_evaluations += evaluations

        alerts = self.master.process_match_batch(
            [(event, matches) for event, matches, _ in accepted])
        for engine, dependent_plan in zip(self.dependents, plan.dependents):
            pairs: List[Tuple[Event, List[PatternMatch]]] = [
                (event, []) for event, _, _ in accepted]
            saved = 0
            evaluations = 0
            for pattern_plan in dependent_plan:
                candidates = context.candidate_rows(
                    pattern_plan.operations, plan, global_bitmap)
                if pattern_plan.shared is not None:
                    saved += len(candidates)
                    shared = pattern_plan.shared
                    pattern = pattern_plan.pattern
                    for row in candidates:
                        position = entry_for_row[row]
                        match = accepted[position][2].get(shared)
                        if match is not None:
                            pairs[position][1].append(
                                _rebind(match, pattern))
                    continue
                evaluations += len(candidates)
                alias = pattern_plan.alias
                subject_var = pattern_plan.subject_var
                object_var = pattern_plan.object_var
                for row in context.pattern_rows(pattern_plan, plan,
                                                global_bitmap):
                    event = events[row]
                    pairs[entry_for_row[row]][1].append(PatternMatch(
                        alias=alias, event=event,
                        bindings={subject_var: event.subject,
                                  object_var: event.obj}))
            stats.pattern_evaluations_saved += saved
            stats.pattern_evaluations += evaluations
            alerts.extend(engine.process_match_batch(pairs))
        return alerts

    # -- execution under quarantine (fault isolation) -------------------------

    def process_events_guarded(self, events: Sequence[Event],
                               stats: SchedulerStats,
                               guard: "_QuarantineGuard") -> List[Alert]:
        """:meth:`process_events` with the quarantine circuit-breaker armed.

        A separate method so the fault-free dispatch loops stay free of
        try/except bookkeeping.  Failures are attributed per engine: a
        master whose compiled pattern (or global-constraint closure)
        raises loses that evaluation — dependents sharing the failed
        signature fall back to their own compiled pattern — and an
        engine whose batch processing raises loses only its own alerts
        for the batch; every other engine of the group is unaffected.
        """
        master = self.master
        master_matcher = master.matcher.pattern_matcher
        passes = master_matcher.passes_global_constraints
        operations = self.operations
        accepted: List[Tuple[Event, List[PatternMatch],
                             Optional[Dict[Tuple, PatternMatch]]]] = []
        # Master signatures whose evaluation raised at least once this
        # batch: dependents stop reusing them and evaluate their own
        # pattern instead (equivalent result when the master *did*
        # match; the only way to any result when it raised).
        failed_signatures: Set[Tuple] = set()
        evaluations = 0
        for event in events:
            try:
                ok = passes(event)
            except Exception as error:
                guard.record(master, error, event.timestamp)
                continue
            if not ok:
                continue
            stats.buffered_events += self._retain(event)
            operation = event.operation.value
            if operation not in operations:
                accepted.append((event, [], None))
                continue
            master_matches: List[PatternMatch] = []
            matched_by_signature: Dict[Tuple, PatternMatch] = {}
            for pattern, signature, pattern_operations, compiled in (
                    self._master_plan):
                if operation not in pattern_operations:
                    continue
                evaluations += 1
                try:
                    if compiled is not None:
                        match = compiled.match_accepted_operation(event)
                    else:
                        match = master_matcher.match_pattern(event, pattern)
                except Exception as error:
                    guard.record(master, error, event.timestamp)
                    failed_signatures.add(signature)
                    continue
                if match is not None:
                    master_matches.append(match)
                    matched_by_signature[signature] = match
            accepted.append((event, master_matches, matched_by_signature))
        stats.pattern_evaluations += evaluations
        if not accepted:
            return []

        try:
            alerts = master.process_match_batch(
                [(event, matches) for event, matches, _ in accepted])
        except Exception as error:
            guard.record(master, error, accepted[-1][0].timestamp)
            alerts = []
        for engine, plan in zip(self.dependents, self._dependent_plans):
            engine_matcher = engine.matcher.pattern_matcher
            pairs: List[Tuple[Event, List[PatternMatch]]] = []
            saved = 0
            evaluations = 0
            for event, _, matched_by_signature in accepted:
                dependent_matches: List[PatternMatch] = []
                if matched_by_signature is not None:
                    operation = event.operation.value
                    for pattern, shared, pattern_operations, compiled in plan:
                        if operation not in pattern_operations:
                            continue
                        if (shared is not None
                                and shared not in failed_signatures):
                            saved += 1
                            match = matched_by_signature.get(shared)
                            if match is not None:
                                dependent_matches.append(
                                    _rebind(match, pattern))
                            continue
                        evaluations += 1
                        try:
                            if compiled is not None:
                                match = compiled.match_accepted_operation(
                                    event)
                            else:
                                match = engine_matcher.match_pattern(
                                    event, pattern)
                        except Exception as error:
                            guard.record(engine, error, event.timestamp)
                            continue
                        if match is not None:
                            dependent_matches.append(match)
                pairs.append((event, dependent_matches))
            stats.pattern_evaluations_saved += saved
            stats.pattern_evaluations += evaluations
            try:
                alerts.extend(engine.process_match_batch(pairs))
            except Exception as error:
                guard.record(engine, error, pairs[-1][0].timestamp)
        return alerts

    def process_events_columnar_guarded(
            self, block: ColumnBlock, context: BatchPredicateContext,
            stats: SchedulerStats,
            guard: "_QuarantineGuard") -> List[Alert]:
        """:meth:`process_events_columnar` with the circuit-breaker armed.

        The group's shared columnar work (the global filter) is
        attributed to the master — when it raises, the whole group skips
        the batch (there is no per-engine way to filter without it) and
        the master's budget absorbs the failure.  Per-pattern and
        per-engine work is attributed to the owning engine, with
        dependents falling back to their own compiled pattern when the
        master's side of a shared signature fails.
        """
        plan = self.columnar_plan
        events = block.events
        tail_timestamp = events[-1].timestamp if events else None
        try:
            global_bitmap = context.global_filter(plan)
        except Exception as error:
            guard.record(self.master, error, tail_timestamp)
            return []
        operations = self.operations
        accepted: List[Tuple[Event, List[PatternMatch],
                             Optional[Dict[Tuple, PatternMatch]]]] = []
        entry_for_row: List[Optional[int]] = [None] * block.size
        retained = 0
        operation_values = block.operation_values
        for row in context.selected_rows(plan, global_bitmap):
            event = events[row]
            retained += self._retain(event)
            if operation_values[row] in operations:
                entry_for_row[row] = len(accepted)
                accepted.append((event, [], {}))
            else:
                accepted.append((event, [], None))
        stats.buffered_events += retained
        if not accepted:
            return []

        failed_signatures: Set[Tuple] = set()
        evaluations = 0
        for pattern_plan in plan.master:
            try:
                candidates = context.candidate_rows(
                    pattern_plan.operations, plan, global_bitmap)
                rows = list(context.pattern_rows(pattern_plan, plan,
                                                 global_bitmap))
            except Exception as error:
                guard.record(self.master, error, tail_timestamp)
                failed_signatures.add(pattern_plan.signature)
                continue
            evaluations += len(candidates)
            alias = pattern_plan.alias
            subject_var = pattern_plan.subject_var
            object_var = pattern_plan.object_var
            signature = pattern_plan.signature
            for row in rows:
                event = events[row]
                match = PatternMatch(
                    alias=alias, event=event,
                    bindings={subject_var: event.subject,
                              object_var: event.obj})
                entry = accepted[entry_for_row[row]]
                entry[1].append(match)
                entry[2][signature] = match
        stats.pattern_evaluations += evaluations

        try:
            alerts = self.master.process_match_batch(
                [(event, matches) for event, matches, _ in accepted])
        except Exception as error:
            guard.record(self.master, error, tail_timestamp)
            alerts = []
        for engine, dependent_plan, plan_entries in zip(
                self.dependents, plan.dependents, self._dependent_plans):
            # The dependent's own compiled patterns, keyed by pattern
            # identity, for the shared-signature fallback path.
            compiled_for = {id(entry[0]): entry[3] for entry in plan_entries}
            engine_matcher = engine.matcher.pattern_matcher
            pairs: List[Tuple[Event, List[PatternMatch]]] = [
                (event, []) for event, _, _ in accepted]
            saved = 0
            evaluations = 0
            for pattern_plan in dependent_plan:
                try:
                    candidates = context.candidate_rows(
                        pattern_plan.operations, plan, global_bitmap)
                except Exception as error:
                    guard.record(engine, error, tail_timestamp)
                    continue
                shared = pattern_plan.shared
                pattern = pattern_plan.pattern
                if shared is not None and shared not in failed_signatures:
                    saved += len(candidates)
                    for row in candidates:
                        position = entry_for_row[row]
                        match = accepted[position][2].get(shared)
                        if match is not None:
                            pairs[position][1].append(
                                _rebind(match, pattern))
                    continue
                if shared is not None:
                    # Master's side of the shared signature failed: run
                    # this engine's own compiled pattern over the
                    # candidate rows instead of reusing nothing.
                    compiled = compiled_for.get(id(pattern))
                    evaluations += len(candidates)
                    for row in candidates:
                        event = events[row]
                        try:
                            if compiled is not None:
                                match = compiled.match_accepted_operation(
                                    event)
                            else:
                                match = engine_matcher.match_pattern(
                                    event, pattern)
                        except Exception as error:
                            guard.record(engine, error, event.timestamp)
                            continue
                        if match is not None:
                            pairs[entry_for_row[row]][1].append(match)
                    continue
                try:
                    rows = list(context.pattern_rows(pattern_plan, plan,
                                                     global_bitmap))
                except Exception as error:
                    guard.record(engine, error, tail_timestamp)
                    continue
                evaluations += len(candidates)
                alias = pattern_plan.alias
                subject_var = pattern_plan.subject_var
                object_var = pattern_plan.object_var
                for row in rows:
                    event = events[row]
                    pairs[entry_for_row[row]][1].append(PatternMatch(
                        alias=alias, event=event,
                        bindings={subject_var: event.subject,
                                  object_var: event.obj}))
            stats.pattern_evaluations_saved += saved
            stats.pattern_evaluations += evaluations
            try:
                alerts.extend(engine.process_match_batch(pairs))
            except Exception as error:
                guard.record(engine, error, tail_timestamp)
        return alerts

    def finish_guarded(self, guard: "_QuarantineGuard") -> List[Alert]:
        """:meth:`finish` with per-engine fault isolation."""
        alerts: List[Alert] = []
        for engine in self.engines:
            try:
                alerts.extend(engine.finish())
            except Exception as error:
                guard.record(engine, error, None)
        return alerts

    def finish(self) -> List[Alert]:
        """Flush every engine of the group at end of stream."""
        alerts: List[Alert] = []
        for engine in self.engines:
            alerts.extend(engine.finish())
        return alerts

    def _retain(self, event: Event) -> int:
        """Buffer one event; return the net change in buffered-event count.

        The delta lets the scheduler keep its ``buffered_events`` total
        incrementally instead of re-summing every group's buffer length on
        every event.
        """
        self.shared_buffer.append(event)
        evicted = 0
        cutoff = event.timestamp - self._buffer_seconds
        while self.shared_buffer and self.shared_buffer[0].timestamp < cutoff:
            self.shared_buffer.popleft()
            evicted += 1
        return 1 - evicted

    @property
    def buffered_events(self) -> int:
        """Return how many events the group's shared buffer currently holds."""
        return len(self.shared_buffer)


def _compiled_pattern_for(engine: QueryEngine,
                          pattern: ast.EventPatternDeclaration):
    """Resolve a pattern's compiled form once, at plan-build time.

    Returns None for interpreter-mode engines; the dispatch loop then
    falls back to the matcher's per-pattern lookup.
    """
    compiled_set = engine.matcher.pattern_matcher.compiled_patterns
    if compiled_set is None:
        return None
    return compiled_set.compiled_for(pattern)


def _rebind(match: PatternMatch,
            pattern: ast.EventPatternDeclaration) -> PatternMatch:
    """Rebind a master's match to a dependent pattern's variable names."""
    return PatternMatch(
        alias=pattern.alias,
        event=match.event,
        bindings={
            pattern.subject.variable: match.event.subject,
            pattern.object.variable: match.event.obj,
        },
    )


class _QuarantineGuard:
    """Error-budget circuit-breaker for query fault isolation.

    Every non-SAQL exception the guarded dispatch paths catch is
    recorded here as a *fatal* error against the owning engine (SAQL
    evaluation errors never reach the guard — the engines catch and
    report those themselves, non-fatally).  Once an engine's fatal count
    reaches the budget the breaker trips; the scheduler removes the
    engine from dispatch at the next :meth:`take_tripped` (batch
    boundary), so one broken query stops burning its group's batches
    while every other query keeps alerting.  Re-registering the query
    (``add_query``) re-arms the breaker with a fresh budget.
    """

    def __init__(self, reporter: ErrorReporter, budget: int):
        self._reporter = reporter
        self._budget = budget
        self._tripped: Set[str] = set()
        self._pending: List[QueryEngine] = []

    def record(self, engine: QueryEngine, error: Exception,
               timestamp: Optional[float] = None) -> None:
        """Charge one fatal error against an engine's budget."""
        name = engine.name
        self._reporter.report(name, error, timestamp=timestamp, fatal=True)
        if (name not in self._tripped
                and self._reporter.fatal_count(name) >= self._budget):
            self._tripped.add(name)
            self._pending.append(engine)

    def sweep(self, engines: Iterable[QueryEngine]) -> None:
        """Trip breakers for budget-exhausted engines the guard never saw.

        Engines report some fatal errors internally (a raising alert
        sink, for one) instead of raising through the guarded dispatch
        paths; those land in the shared reporter without a
        :meth:`record` call.  Sweeping at batch boundaries folds them
        into the same budget, so a persistently failing sink quarantines
        its query exactly like a crashing closure would.
        """
        for engine in engines:
            name = engine.name
            if (name not in self._tripped
                    and self._reporter.fatal_count(name) >= self._budget):
                self._tripped.add(name)
                self._pending.append(engine)

    def tripped(self, name: str) -> bool:
        """True when the named query's breaker has tripped."""
        return name in self._tripped

    def take_tripped(self) -> List[QueryEngine]:
        """Drain the engines that tripped since the last call."""
        pending, self._pending = self._pending, []
        return pending

    def rearm(self, name: str) -> None:
        """Reset one query's breaker (its error counters reset too)."""
        self._tripped.discard(name)
        self._reporter.clear_query(name)


class ConcurrentQueryScheduler:
    """Executes many SAQL queries over one stream with result sharing."""

    def __init__(self, sink: Optional[AlertSink] = None,
                 error_reporter: Optional[ErrorReporter] = None,
                 enable_sharing: bool = True,
                 track_agent_load: bool = False,
                 checkpoint_store=None,
                 checkpoint_interval: Optional[int] = None,
                 checkpoint_watermark_interval: Optional[float] = None,
                 columnar: bool = True,
                 columnar_min_batch: int = DEFAULT_COLUMNAR_MIN_BATCH,
                 quarantine_errors: Optional[int] = None,
                 metrics: Optional[MetricRegistry] = None,
                 shard_id: int = 0,
                 slow_query_threshold: Optional[float] =
                 DEFAULT_SLOW_QUERY_THRESHOLD):
        self._sink = sink
        self._error_reporter = error_reporter or ErrorReporter()
        self._enable_sharing = enable_sharing
        self._groups: Dict[Any, QueryGroup] = {}
        self._engines: List[QueryEngine] = []
        # Columnar batch execution: batches of at least
        # ``columnar_min_batch`` events are pivoted into a ColumnBlock and
        # filtered through the shared predicate index; smaller batches
        # (and the per-event path) use the compiled closures, which also
        # remain the ``columnar=False`` equivalence oracle.
        if columnar_min_batch < 1:
            raise ValueError("columnar batch threshold must be at least 1")
        self._columnar = columnar
        self._columnar_min_batch = columnar_min_batch
        self._predicate_index = SharedPredicateIndex()
        # Per-predicate row counters restored from a checkpoint (the live
        # index restarts from zero after a restore; reports add these).
        self._predicate_baseline: Dict[str, Dict[str, int]] = {}
        # True when the predicate index changed since the last stats
        # sample (columnar batch processed, plan built or released), so
        # closure-path batches skip the per-atom report rebuild.
        self._predicate_stats_dirty = False
        # Monotonic key counter for sharing-disabled groups (never reused,
        # so removal cannot alias a later registration onto a dead key).
        self._isolated_serial = 0
        # Operation keyword -> (group, can_match) in registration order,
        # rebuilt lazily after registrations.  can_match decides between
        # full pattern dispatch and the cheap watermark-advance path.
        self._op_index: Optional[Dict[str, Tuple[Tuple[QueryGroup, bool],
                                                 ...]]] = None
        self._fallback_entries: Tuple[Tuple[QueryGroup, bool], ...] = ()
        self.stats = SchedulerStats()
        # Per-agentid ingest accounting for the work-stealing balancer.
        # Off by default so the per-event hot path pays nothing; the
        # sharded runtime switches it on when rebalancing is requested.
        self._track_agent_load = track_agent_load
        self._agent_loads: Counter = Counter()
        self._load_watermark = float("-inf")
        # Durable checkpointing (see repro.core.snapshot): with a store
        # configured, the scheduler snapshots its full state every
        # ``checkpoint_interval`` ingested events and/or every
        # ``checkpoint_watermark_interval`` seconds of event-time
        # watermark advance, and tracks the resume cursor (last processed
        # journal position) the recovery path replays from.
        if checkpoint_interval is not None and checkpoint_interval < 1:
            raise ValueError("checkpoint interval must be at least 1 event")
        if (checkpoint_store is not None and checkpoint_interval is None
                and checkpoint_watermark_interval is None):
            raise ValueError("a checkpoint store needs an interval: pass "
                             "checkpoint_interval (events) and/or "
                             "checkpoint_watermark_interval (seconds)")
        self._checkpoint_store = checkpoint_store
        self._checkpoint_interval = checkpoint_interval
        self._checkpoint_watermark_interval = checkpoint_watermark_interval
        self._events_since_checkpoint = 0
        self._watermark_at_checkpoint = float("-inf")
        # The resume cursor: watermark (last processed event timestamp),
        # the last processed event id, and the ids of every processed
        # event *at* the watermark (so journal ties at the watermark are
        # not re-delivered on resume).  Maintained whenever a checkpoint
        # store is configured.
        self._cursor_watermark = float("-inf")
        self._cursor_last_id = 0
        self._cursor_frontier: Set[int] = set()
        #: Cursor restored by :meth:`restore_state` (None otherwise).
        self.restored_cursor = None
        # Query fault isolation: with a budget configured, non-SAQL
        # exceptions from one query's compiled closures / columnar plan /
        # engine are caught, charged against that query, and the query is
        # quarantined (removed from dispatch) once the budget is spent —
        # instead of today's fail-fast abort poisoning every co-grouped
        # query.  Off by default: the fault-free hot paths are untouched.
        if quarantine_errors is not None and quarantine_errors < 1:
            raise ValueError("quarantine error budget must be at least 1")
        self._quarantine: Optional[_QuarantineGuard] = (
            _QuarantineGuard(self._error_reporter, quarantine_errors)
            if quarantine_errors is not None else None)
        #: Quarantined queries: name -> {"errors", "last_error",
        #: "timestamp"} detail for operators (stats carry the counts).
        self.quarantined: Dict[str, Dict[str, Any]] = {}
        # Unified observability (repro.obs): one registry per scheduler.
        # Sharded lanes receive their own registries (watermark lag keeps
        # a per-shard series via the shard label) and the parent merges
        # the snapshots; a disabled registry turns every hook into a
        # no-op and the batch path skips its clock reads entirely.
        self.metrics = metrics if metrics is not None else MetricRegistry()
        self._stage_timers = StageTimers(self.metrics)
        registry = self.metrics
        self._metric_events = registry.counter(
            "saql_events_total", "Events ingested by the scheduler.")
        self._metric_batches = registry.counter(
            "saql_batches_total", "Ingest batches processed.")
        self._metric_batch_seconds = registry.histogram(
            "saql_batch_seconds",
            "Whole-batch processing latency (excludes checkpoint writes, "
            "which time under saql_stage_seconds{stage=checkpoint_write}).")
        self._metric_watermark_lag = registry.gauge(
            "saql_watermark_lag_seconds",
            "Processing-time minus event-time at the last batch tail "
            "(meaningful when event timestamps are wall-clock epochs).",
            shard=str(shard_id))
        self._metric_alert_e2e = registry.histogram(
            "saql_alert_e2e_seconds",
            "Event timestamp to alert-milestone latency; point=emit is "
            "recorded here, point=sink_ack by the service's dispatcher.",
            point="emit")
        # Per-query children resolved once and cached (label lookups stay
        # off the batch path).
        self._metric_alert_counters: Dict[str, Any] = {}
        self._metric_alert_spans: Dict[str, Any] = {}
        self._group_timers: Dict[str, Any] = {}
        self._close_timer = (self._observe_window_close
                             if self.metrics.enabled else None)
        if slow_query_threshold is not None and slow_query_threshold <= 0:
            raise ValueError("slow-query threshold must be positive "
                             "(or None to disable the log)")
        self._slow_query_threshold = slow_query_threshold
        self._slow_queries: Deque[Dict[str, Any]] = deque(
            maxlen=SLOW_QUERY_LOG_DEPTH)

    # -- registration ------------------------------------------------------------

    def add_query(self, query: Union[str, ast.Query],
                  name: Optional[str] = None) -> QueryEngine:
        """Register one query; returns the engine created for it."""
        if isinstance(query, str):
            query = parse_query(query)
        engine = QueryEngine(query, name=name, sink=self._sink,
                             error_reporter=self._error_reporter,
                             close_timer=self._close_timer)
        self._engines.append(engine)

        # Re-registering a quarantined query re-arms its circuit-breaker
        # with a fresh error budget (and a clean error-rate slate).
        if self._quarantine is not None and engine.name in self.quarantined:
            del self.quarantined[engine.name]
            self.stats.quarantined.pop(engine.name, None)
            self._quarantine.rearm(engine.name)

        if self._enable_sharing:
            group_key: Any = compatibility_signature(query)
        else:
            # Without sharing every query is its own group (the baseline
            # behaviour of general-purpose stream engines in Section I).
            self._isolated_serial += 1
            group_key = ("isolated", self._isolated_serial)

        group = self._groups.get(group_key)
        if group is None:
            signature = (group_key if isinstance(group_key,
                                                 CompatibilitySignature)
                         else compatibility_signature(query))
            self._groups[group_key] = QueryGroup(signature, engine)
        else:
            group.add(engine)
            # Membership changed: the columnar plan (and its predicate
            # subscriptions) must rebuild for the next columnar batch.
            self._invalidate_group_plan(group)
        self._op_index = None

        self.stats.queries = len(self._engines)
        self.stats.groups = len(self._groups)
        return engine

    def remove_query(self, query: Union[str, QueryEngine]) -> QueryEngine:
        """Unregister one query at runtime; returns its (live) engine.

        ``query`` is an engine previously returned by :meth:`add_query`
        or a unique engine name.  The engine keeps its state (open
        windows are abandoned, not flushed — call ``engine.finish()`` on
        the returned engine to drain them); the scheduler's dispatch
        plans, compatibility groups and the shared predicate index update
        incrementally: a removed dependent leaves its group, a removed
        master promotes its first dependent (the group's shared buffer
        carries over), and the last member dissolves the group.  Every
        subsequent batch runs against the rebuilt plans, so registration
        and removal are safe between any two batches of a live stream.
        """
        if isinstance(query, QueryEngine):
            engine = query
            if engine not in self._engines:
                raise KeyError(f"engine {engine.name!r} is not registered")
        else:
            named = [candidate for candidate in self._engines
                     if candidate.name == query]
            if not named:
                raise KeyError(f"no registered query named {query!r}")
            if len(named) > 1:
                raise KeyError(f"query name {query!r} is ambiguous "
                               f"({len(named)} engines); pass the engine")
            engine = named[0]
        group_key, group = next(
            (key, candidate) for key, candidate in self._groups.items()
            if engine is candidate.master or engine in candidate.dependents)
        self._engines.remove(engine)
        self._invalidate_group_plan(group)
        if engine is group.master:
            if not group.dependents:
                del self._groups[group_key]
                self.stats.buffered_events -= len(group.shared_buffer)
            else:
                promoted = QueryGroup(group.signature, group.dependents[0])
                # The shared stream copy survives the master hand-off.
                promoted.shared_buffer = group.shared_buffer
                for dependent in group.dependents[1:]:
                    promoted.add(dependent)
                self._groups[group_key] = promoted
        else:
            group.remove_dependent(engine)
        self._op_index = None
        self.stats.queries = len(self._engines)
        self.stats.groups = len(self._groups)
        self._refresh_match_stats()
        return engine

    def _invalidate_group_plan(self, group: QueryGroup) -> None:
        """Release a group's columnar plan (it rebuilds on the next batch)."""
        plan = group.columnar_plan
        if plan is not None:
            plan.release(self._predicate_index)
            group.columnar_plan = None
            self._predicate_stats_dirty = True

    def add_queries(self, queries: Iterable[Union[str, ast.Query]]) -> None:
        """Register several queries at once."""
        for query in queries:
            self.add_query(query)

    @property
    def engines(self) -> List[QueryEngine]:
        """Return all registered query engines."""
        return list(self._engines)

    @property
    def groups(self) -> List[QueryGroup]:
        """Return the compatibility groups formed so far."""
        return list(self._groups.values())

    @property
    def error_reporter(self) -> ErrorReporter:
        """Return the shared error reporter."""
        return self._error_reporter

    # -- execution ----------------------------------------------------------------

    def _rebuild_op_index(self) -> Dict[str, Tuple[Tuple[QueryGroup, bool],
                                                   ...]]:
        """Build the operation dispatch table over the registered groups."""
        groups = list(self._groups.values())
        operations = set()
        for group in groups:
            operations.update(group.operations)
        index = {
            operation: tuple((group, operation in group.operations)
                             for group in groups)
            for operation in operations
        }
        # Operations no pattern accepts only advance watermarks.
        self._fallback_entries = tuple((group, False) for group in groups)
        self._op_index = index
        return index

    def process_event(self, event: Event) -> List[Alert]:
        """Feed one event to every group, dispatching by operation.

        Dispatch is operation-indexed: a group only runs full pattern
        matching when at least one of its patterns accepts the event's
        operation; every other group takes the constant-time
        watermark-advance path, so window-close alerts keep the same
        latency as under unindexed dispatch.
        """
        self.stats.events_ingested += 1
        if self._track_agent_load:
            self._agent_loads[event.agentid] += 1
            if event.timestamp > self._load_watermark:
                self._load_watermark = event.timestamp
        alerts: List[Alert] = []
        if self._quarantine is not None:
            # Guarded dispatch (no op-index shortcut): the batch path's
            # guarded variant handles both matching and watermark
            # advance, and one event is just a batch of one.
            for group in list(self._groups.values()):
                alerts.extend(group.process_events_guarded(
                    [event], self.stats, self._quarantine))
            self._apply_quarantine()
        else:
            index = self._op_index
            if index is None:
                index = self._rebuild_op_index()
            entries = index.get(event.operation.value)
            if entries is None:
                entries = self._fallback_entries
            for group, can_match in entries:
                if can_match:
                    alerts.extend(group.process_event(event, self.stats))
                else:
                    alerts.extend(group.advance_watermark(event, self.stats))
        self.stats.peak_buffered_events = max(
            self.stats.peak_buffered_events, self.stats.buffered_events)
        self.stats.alerts += len(alerts)
        if self._checkpoint_store is not None:
            self._advance_cursor(event)
            self._maybe_checkpoint()
        return alerts

    def process_events(self, events: Sequence[Event]) -> List[Alert]:
        """Feed a timestamp-ordered batch of events (batch ingestion path).

        Semantically equivalent to calling :meth:`process_event` per event:
        identical alert sets, identical per-engine alert order, identical
        statistics — except ``peak_buffered_events``, which is sampled at
        batch boundaries here (versus per event), making it a close lower
        bound of the per-event figure.  Each group consumes the batch
        group-major (see :meth:`QueryGroup.process_events`), collapsing the
        per-event engine call chain into one call per engine per batch.
        """
        if not isinstance(events, (list, tuple)):
            events = list(events)
        stats = self.stats
        stats.events_ingested += len(events)
        metrics_on = self.metrics.enabled
        batch_started = perf_counter() if metrics_on else 0.0
        if self._track_agent_load and events:
            self._agent_loads.update(event.agentid for event in events)
            # Batches are timestamp-ordered, so the tail carries the max.
            if events[-1].timestamp > self._load_watermark:
                self._load_watermark = events[-1].timestamp
        alerts: List[Alert] = []
        if (self._columnar and self._groups
                and len(events) >= self._columnar_min_batch):
            # Columnar fast path: pivot the batch once, evaluate each
            # distinct predicate once, then run the per-match engine path
            # only for surviving rows.
            pivot_started = perf_counter() if metrics_on else 0.0
            block = ColumnBlock(events)
            stats.column_blocks_built += 1
            context = BatchPredicateContext(block, timed=metrics_on)
            # Every group plan must exist before any bitmap is evaluated:
            # plan construction is what subscribes each group's operations
            # to the shared atoms, and an atom's selection vector is only
            # computed over its subscribers' operation rows.  Interleaving
            # build with evaluation would freeze an atom's operation set at
            # whatever the first subscriber declared.
            self._ensure_columnar_plans()
            if metrics_on:
                # Pivot covers block + context construction and any lazy
                # plan (re)builds; steady state is block construction.
                dispatch_started = perf_counter()
                self._stage_timers.observe("columnar_pivot",
                                           dispatch_started - pivot_started)
            guard = self._quarantine
            if guard is not None:
                for group in list(self._groups.values()):
                    group_started = perf_counter() if metrics_on else 0.0
                    alerts.extend(group.process_events_columnar_guarded(
                        block, context, stats, guard))
                    if metrics_on:
                        self._observe_group(
                            group, perf_counter() - group_started,
                            len(events))
            else:
                for group in self._groups.values():
                    group_started = perf_counter() if metrics_on else 0.0
                    alerts.extend(group.process_events_columnar(
                        block, context, stats))
                    if metrics_on:
                        self._observe_group(
                            group, perf_counter() - group_started,
                            len(events))
            stats.predicate_evaluations += context.rows_evaluated
            stats.predicate_evaluations_saved += context.rows_saved
            self._predicate_stats_dirty = True
            if metrics_on:
                # predicate_eval and window_close are nested inside the
                # pattern_match dispatch span (see docs/observability.md).
                self._stage_timers.observe("predicate_eval",
                                           context.eval_seconds)
                self._stage_timers.observe(
                    "pattern_match", perf_counter() - dispatch_started)
        else:
            dispatch_started = perf_counter() if metrics_on else 0.0
            guard = self._quarantine
            if guard is not None:
                for group in list(self._groups.values()):
                    group_started = perf_counter() if metrics_on else 0.0
                    alerts.extend(group.process_events_guarded(
                        events, stats, guard))
                    if metrics_on:
                        self._observe_group(
                            group, perf_counter() - group_started,
                            len(events))
            else:
                for group in self._groups.values():
                    group_started = perf_counter() if metrics_on else 0.0
                    alerts.extend(group.process_events(events, stats))
                    if metrics_on:
                        self._observe_group(
                            group, perf_counter() - group_started,
                            len(events))
            if metrics_on:
                self._stage_timers.observe(
                    "pattern_match", perf_counter() - dispatch_started)
        self._apply_quarantine()
        if stats.buffered_events > stats.peak_buffered_events:
            stats.peak_buffered_events = stats.buffered_events
        stats.alerts += len(alerts)
        self._refresh_match_stats()
        if metrics_on:
            self._note_alerts(alerts)
            self._metric_events.inc(len(events))
            self._metric_batches.inc()
            self._metric_batch_seconds.observe(perf_counter() - batch_started)
            if events:
                self._metric_watermark_lag.set(
                    time.time() - events[-1].timestamp)
        if self._checkpoint_store is not None:
            for event in events:
                self._advance_cursor(event)
            self._maybe_checkpoint()
        return alerts

    def _observe_window_close(self, seconds: float) -> None:
        """Engine hook: window-close time inside the batch dispatch."""
        self._stage_timers.observe("window_close", seconds)

    def _observe_group(self, group: QueryGroup, seconds: float,
                       batch_events: int) -> None:
        """Per-group batch timing: per-query histogram + slow-query log.

        The compatibility group is the dispatch unit, so its time is
        attributed to the *master* query's name (dependents ride the
        master's matching; a promoted dependent inherits the series).
        """
        name = group.master.name
        histogram = self._group_timers.get(name)
        if histogram is None:
            histogram = self.metrics.histogram(
                "saql_query_batch_seconds",
                "Per-query (group master) batch execution latency.",
                query=name)
            self._group_timers[name] = histogram
        histogram.observe(seconds)
        threshold = self._slow_query_threshold
        if threshold is not None and seconds >= threshold:
            self._slow_queries.append({
                "query": name,
                "seconds": seconds,
                "events": batch_events,
                "p99_seconds": histogram.percentile(0.99),
            })

    def _note_alerts(self, alerts: List[Alert]) -> None:
        """Per-alert metrics: counters, window span, emit-point latency."""
        if not alerts:
            return
        now = time.time()
        for alert in alerts:
            name = alert.query_name
            counter = self._metric_alert_counters.get(name)
            if counter is None:
                counter = self.metrics.counter(
                    "saql_alerts_total", "Alerts emitted.", query=name)
                self._metric_alert_counters[name] = counter
            counter.inc()
            span = self._metric_alert_spans.get(name)
            if span is None:
                span = self.metrics.histogram(
                    "saql_alert_window_span_seconds",
                    "Alert timestamp minus window start, in event time "
                    "(deterministic: identical across backends).",
                    query=name)
                self._metric_alert_spans[name] = span
            start = alert.window_start
            span.observe(alert.timestamp - start
                         if start is not None else 0.0)
            # Event-time to emission in wall clock; meaningful when event
            # timestamps are wall-clock epochs (the always-on service),
            # clamped at zero for synthetic/replayed streams.
            self._metric_alert_e2e.observe(max(0.0, now - alert.timestamp))

    def slow_queries(self) -> List[Dict[str, Any]]:
        """The ring-buffered slow-query log, oldest first (bounded)."""
        return list(self._slow_queries)

    def metrics_snapshot(self) -> Optional[Dict[str, Any]]:
        """Snapshot the live registry (``None`` with metrics disabled)."""
        return self.metrics.snapshot() if self.metrics.enabled else None

    def _refresh_match_stats(self) -> None:
        """Sample the engines' state-match retention into the stats.

        Sampling at batch boundaries (and finish) keeps the accounting off
        the per-event hot path; the peak is the sum of per-engine peaks,
        an upper bound on the true simultaneous figure.
        """
        buffered = 0
        peak = 0
        for engine in self._engines:
            buffered += engine.state_buffered_matches
            peak += engine.state_peak_buffered_matches
        self.stats.buffered_matches = buffered
        self.stats.peak_buffered_matches = peak
        if self._columnar and self._predicate_stats_dirty:
            self._refresh_predicate_stats()

    def _refresh_predicate_stats(self) -> None:
        """Sample the shared predicate index into the stats.

        Like the match-retention figures, sampled at batch boundaries and
        finish.  Counters restored from a checkpoint are kept as a
        baseline (the live index restarts from zero after a restore).
        """
        report: Dict[str, Dict[str, int]] = {
            label: dict(entry)
            for label, entry in self._predicate_baseline.items()
        }
        atoms = self._predicate_index.atoms()
        for atom in atoms:
            entry = report.setdefault(
                atom.label, {"subscribers": 0, "rows_evaluated": 0,
                             "rows_selected": 0})
            entry["subscribers"] = atom.refcount
            entry["rows_evaluated"] += atom.rows_evaluated
            entry["rows_selected"] += atom.rows_selected
        self.stats.predicate_sharing = report
        self.stats.distinct_predicates = len(atoms)
        self._predicate_stats_dirty = False

    def _ensure_columnar_plans(self) -> None:
        """Build every group's columnar plan that is missing or stale."""
        for group in self._groups.values():
            if group.columnar_plan is None:
                group.columnar_plan = build_group_plan(
                    group, self._predicate_index)
                self._predicate_stats_dirty = True

    def distinct_predicate_count(self) -> int:
        """Distinct predicates across all registered queries (columnar).

        Forces the lazy columnar plans to build, so the figure is
        available before the first batch (benchmarks report it per arm).
        Returns 0 under ``columnar=False``.
        """
        if not self._columnar:
            return 0
        self._ensure_columnar_plans()
        return self._predicate_index.distinct_count

    def shared_predicate_report(self) -> List[Dict[str, Any]]:
        """Per-predicate sharing and selectivity, heaviest scanners first.

        Each row names one canonical predicate, how many query slots
        subscribe to it, how many column cells it actually scanned and
        selected over the run, and the resulting selectivity.
        """
        self._refresh_predicate_stats()
        rows = []
        for label, entry in self.stats.predicate_sharing.items():
            evaluated = entry["rows_evaluated"]
            rows.append({
                "predicate": label,
                "subscribers": entry["subscribers"],
                "rows_evaluated": evaluated,
                "rows_selected": entry["rows_selected"],
                "selectivity": (entry["rows_selected"] / evaluated
                                if evaluated else 0.0),
            })
        rows.sort(key=lambda row: (-row["rows_evaluated"],
                                   row["predicate"]))
        return rows

    def finish(self) -> List[Alert]:
        """Flush every group at end of stream."""
        alerts: List[Alert] = []
        guard = self._quarantine
        for group in list(self._groups.values()):
            if guard is not None:
                alerts.extend(group.finish_guarded(guard))
            else:
                alerts.extend(group.finish())
        self._apply_quarantine()
        self.stats.alerts += len(alerts)
        self._refresh_match_stats()
        if self.metrics.enabled:
            self._note_alerts(alerts)
            # End of stream is the stats round every backend already
            # ships to the sharded parent; the registry snapshot rides it.
            self.stats.metrics_snapshot = self.metrics.snapshot()
        return alerts

    def _apply_quarantine(self) -> None:
        """Remove engines whose circuit-breaker tripped this batch.

        Runs at batch boundaries (dispatch plans only change between
        batches).  The quarantined engine leaves dispatch through
        :meth:`remove_query` — co-grouped queries keep running, a
        removed master promotes its first dependent — and the trip is
        recorded in :attr:`quarantined` and ``stats.quarantined``.
        """
        guard = self._quarantine
        if guard is None:
            return
        guard.sweep(self._engines)
        for engine in guard.take_tripped():
            try:
                self.remove_query(engine)
            except KeyError:
                continue
            name = engine.name
            record = self._error_reporter.last_error(name)
            count = self._error_reporter.fatal_count(name)
            self.quarantined[name] = {
                "errors": count,
                "last_error": record.message if record is not None else "",
                "timestamp": (record.timestamp if record is not None
                              else None),
            }
            self.stats.quarantined[name] = count

    # -- snapshots / checkpointing / recovery --------------------------------

    def _advance_cursor(self, event: Event) -> None:
        timestamp = event.timestamp
        if timestamp > self._cursor_watermark:
            self._cursor_watermark = timestamp
            self._cursor_frontier = {event.event_id}
        elif timestamp == self._cursor_watermark:
            self._cursor_frontier.add(event.event_id)
        self._cursor_last_id = event.event_id
        self._events_since_checkpoint += 1

    def _maybe_checkpoint(self) -> None:
        interval = self._checkpoint_interval
        due = (interval is not None
               and self._events_since_checkpoint >= interval)
        if not due and self._checkpoint_watermark_interval is not None:
            due = (self._cursor_watermark - self._watermark_at_checkpoint
                   >= self._checkpoint_watermark_interval)
        if due:
            self.checkpoint_now()

    def checkpoint_now(self):
        """Write one checkpoint through the configured store; returns it."""
        if self._checkpoint_store is None:
            raise RuntimeError("no checkpoint store configured")
        with self._stage_timers.time("checkpoint_write"):
            snapshot = self.export_state()
            self._checkpoint_store.save(snapshot)
        self._events_since_checkpoint = 0
        self._watermark_at_checkpoint = self._cursor_watermark
        return snapshot

    def emitted_alerts(self) -> List[Alert]:
        """Every alert emitted over the scheduler's lifetime, per engine.

        After a restore this includes the checkpointed alert ledgers, so
        a recovered run's collected output is the uninterrupted run's
        alert set (grouped by engine, in per-engine emission order).
        """
        alerts: List[Alert] = []
        for engine in self._engines:
            alerts.extend(engine.alerts)
        return alerts

    def export_state(self) -> Dict[str, Any]:
        """Snapshot the scheduler in the versioned, JSON-friendly form.

        Covers every engine's state (through
        :meth:`QueryEngine.export_state`), the statistics, the
        work-stealing load counters and the resume cursor.  The groups'
        shared event buffers are deliberately *not* serialized: they are
        pure retention bookkeeping (nothing re-reads the buffered events
        — matching happens on arrival), and at tens of seconds of raw
        stream they would dominate the checkpoint cost.  A restored
        scheduler starts with empty buffers and rebuilds the
        ``buffered_events`` figure as the resumed stream refills them.
        The result round-trips through strict JSON.
        """
        from repro.core.snapshot.codecs import SNAPSHOT_VERSION, encode_float
        stats = asdict(self.stats)
        # Live metrics piggyback on stats *rounds*, never on durable
        # checkpoints: timing histograms are nondeterministic across runs
        # and would break snapshot round-trip/diff determinism.
        stats.pop("metrics_snapshot", None)
        return {
            "version": SNAPSHOT_VERSION,
            "kind": "scheduler",
            "queries": [engine.name for engine in self._engines],
            "engines": {engine.name: engine.export_state()
                        for engine in self._engines},
            "stats": stats,
            "load": {
                "agent_loads": dict(self._agent_loads),
                "watermark": encode_float(self._load_watermark),
            },
            "cursor": {
                "watermark": encode_float(self._cursor_watermark),
                "last_event_id": self._cursor_last_id,
                "frontier_ids": sorted(self._cursor_frontier),
                "events_ingested": self.stats.events_ingested,
            },
        }

    def restore_state(self, snapshot: Dict[str, Any]) -> None:
        """Restore :meth:`export_state` output into this scheduler.

        The same queries must have been registered (same names, same
        order) on a scheduler that has processed nothing yet.  After the
        restore, :attr:`restored_cursor` holds the journal position to
        resume from (see :func:`repro.core.snapshot.recovery.resume_events`).
        """
        from repro.core.snapshot.codecs import check_version
        from repro.core.snapshot.recovery import ResumeCursor
        from repro.events.serialization import decode_float
        check_version(snapshot, "scheduler")
        if snapshot.get("kind") != "scheduler":
            raise ValueError(
                f"not a single-scheduler snapshot (kind="
                f"{snapshot.get('kind')!r}); sharded checkpoints restore "
                "through ShardedScheduler.restore_state with the same "
                "shard count")
        names = [engine.name for engine in self._engines]
        if snapshot["queries"] != names:
            raise ValueError(
                f"snapshot was taken with queries {snapshot['queries']!r} "
                f"but this scheduler registered {names!r}; register the "
                "same queries in the same order before restoring")
        restore_started = perf_counter()
        for engine in self._engines:
            engine.restore_state(snapshot["engines"][engine.name])
        self.stats = SchedulerStats(**snapshot["stats"])
        # The live predicate index restarts from zero (plans rebuild on
        # the next columnar batch); keep the checkpointed per-predicate
        # row counters as the reporting baseline.
        self._predicate_baseline = {
            label: {key: int(value) for key, value in entry.items()}
            for label, entry in self.stats.predicate_sharing.items()
        }
        self._predicate_stats_dirty = True
        # Shared buffers are not checkpointed (see export_state): they
        # start empty and the retention figure rebuilds from zero as the
        # resumed stream refills them; the historical peak survives.
        for group in self._groups.values():
            group.shared_buffer = deque()
        self.stats.buffered_events = 0
        load = snapshot["load"]
        self._agent_loads = Counter(load["agent_loads"])
        self._load_watermark = decode_float(load["watermark"])
        cursor = snapshot["cursor"]
        self._cursor_watermark = decode_float(cursor["watermark"])
        self._cursor_last_id = int(cursor["last_event_id"])
        self._cursor_frontier = set(cursor["frontier_ids"])
        self._watermark_at_checkpoint = self._cursor_watermark
        self._events_since_checkpoint = 0
        self.restored_cursor = ResumeCursor(
            watermark=self._cursor_watermark,
            last_event_id=self._cursor_last_id,
            frontier_ids=frozenset(self._cursor_frontier),
            events_ingested=int(cursor["events_ingested"]),
        )
        self._stage_timers.observe("checkpoint_restore",
                                   perf_counter() - restore_started)

    # -- per-host state transfer (work-stealing support) ---------------------

    def extract_agent_state(self, agentid_key: str) -> Dict[str, Any]:
        """Remove and return one host's slice of every engine's state.

        ``agentid_key`` is the casefolded agentid.  Used by the sharded
        runtime's state-transfer steals: the donor shard extracts the
        victim's partial sequences, window buckets, pane partials, state
        histories and distinct entries, and the thief merges them via
        :meth:`import_agent_state` before receiving the victim's held
        events.
        """
        from repro.core.snapshot.codecs import SNAPSHOT_VERSION
        return {
            "version": SNAPSHOT_VERSION,
            "kind": "agent-state",
            "engines": {engine.name: engine.extract_agent_state(agentid_key)
                        for engine in self._engines},
        }

    def import_agent_state(self, payload: Dict[str, Any]) -> None:
        """Merge a donor scheduler's :meth:`extract_agent_state` slice.

        Engines the donor ran but this scheduler does not (host-pinned
        queries routed elsewhere) contribute empty slices by construction
        — the balancer never steals a pin-satisfying agentid — and are
        skipped.
        """
        from repro.core.snapshot.codecs import check_version
        check_version(payload, "agent-state")
        by_name = {engine.name: engine for engine in self._engines}
        for name, data in payload["engines"].items():
            engine = by_name.get(name)
            if engine is not None:
                engine.import_agent_state(data)
        self._refresh_match_stats()

    # -- load reporting / drain signal (work-stealing support) --------------

    def take_load_report(self) -> ShardLoadReport:
        """Return the per-agentid ingest counts since the last report.

        Requires ``track_agent_load=True`` at construction (the counters
        are otherwise never filled).  Taking a report starts a new epoch:
        the counters reset, the watermark (largest event timestamp seen)
        does not.
        """
        if not self._track_agent_load:
            raise RuntimeError(
                "per-agentid load tracking is disabled; construct the "
                "scheduler with track_agent_load=True")
        report = ShardLoadReport(
            events_by_agentid=dict(self._agent_loads),
            total_events=sum(self._agent_loads.values()),
            watermark=self._load_watermark,
        )
        self._agent_loads.clear()
        return report

    @property
    def load_watermark(self) -> float:
        """The largest event timestamp this scheduler has ingested.

        ``-inf`` before any event.  Only maintained under
        ``track_agent_load=True`` (the sharded runtime enables it whenever
        rebalancing is on); it is the second half of the drain safe-point
        — see :meth:`drained_through`.
        """
        return self._load_watermark

    def open_window_deadline(self) -> Optional[float]:
        """Return the earliest end time of any engine's open windows."""
        deadline: Optional[float] = None
        for engine in self._engines:
            candidate = engine.open_window_deadline()
            if candidate is not None and (deadline is None
                                          or candidate < deadline):
                deadline = candidate
        return deadline

    def drained_through(self, cut: float) -> bool:
        """Return True when no open window ends at or before ``cut``.

        This is half of the sharded runtime's safe-point signal for
        migrating an agentid away from this scheduler: the victim's
        pre-cut events can only land in windows ending at or before the
        cut, so once those windows have closed (and alerted), the shard
        holds no on-time state for the victim.  It is *not* sufficient on
        its own — "no open window ends by the cut" is also true while the
        shard simply has not seen the stream reach the cut yet (a quiet
        spell, or an exempt pinned query's long window spanning it), and
        a victim match arriving after this answer would then open a
        pre-cut window here while later pre-cut events route to the
        thief, splitting one window's aggregate across two shards.  The
        runtime therefore also requires :attr:`load_watermark` ``>= cut``
        (see ``_answer_control`` in the sharded module): past that point
        any further pre-cut event is a *late* event on either shard,
        handled by the same re-opened-bucket semantics as the
        single-process oracle.
        """
        deadline = self.open_window_deadline()
        return deadline is None or deadline > cut

    def execute(self, stream: Iterable[Event],
                batch_size: Optional[int] = None) -> List[Alert]:
        """Run all registered queries over a finite stream.

        With ``batch_size`` the stream is consumed through the batch
        ingestion path (:meth:`process_events`), which amortizes dispatch
        overhead; without it every event is dispatched individually.
        """
        alerts: List[Alert] = []
        if batch_size is not None:
            for batch in iter_batches(stream, batch_size):
                alerts.extend(self.process_events(batch))
        else:
            for event in stream:
                alerts.extend(self.process_event(event))
        alerts.extend(self.finish())
        return alerts
