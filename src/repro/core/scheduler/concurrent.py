"""The concurrent query scheduler (master-dependent-query scheme).

The scheduler owns a set of :class:`~repro.core.engine.query_engine.QueryEngine`
instances and executes them over one event stream.  Queries are grouped by
their :func:`~repro.core.scheduler.compatibility.compatibility_signature`;
each group keeps a single shared buffer of the stream slice it observes
("a single copy of the stream data"), the group's *master* query matches
events against its patterns, and every *dependent* query reuses the
master's match results for the patterns they share.

The scheduler also keeps the accounting the paper's efficiency argument is
about: how many per-query copies of stream data exist (one per group under
sharing versus one per query without), and how many pattern-match
evaluations were saved by reuse.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, Iterable, List, Optional, Tuple, Union

from repro.core.engine.alerts import Alert, AlertSink
from repro.core.engine.error_reporter import ErrorReporter
from repro.core.engine.matching import PatternMatch
from repro.core.engine.query_engine import QueryEngine
from repro.core.language import ast, parse_query
from repro.core.scheduler.compatibility import (
    CompatibilitySignature,
    compatibility_signature,
    pattern_signature,
)
from repro.events.event import Event

#: Default retention (seconds) of the per-group shared event buffer when the
#: group's queries declare no window.
DEFAULT_BUFFER_SECONDS = 600.0


@dataclass
class SchedulerStats:
    """Aggregate accounting for one scheduler run."""

    events_ingested: int = 0
    queries: int = 0
    groups: int = 0
    alerts: int = 0
    #: Pattern-match evaluations actually performed.
    pattern_evaluations: int = 0
    #: Pattern-match evaluations avoided by master-result reuse.
    pattern_evaluations_saved: int = 0
    #: Events currently retained across all shared group buffers.
    buffered_events: int = 0
    #: Peak of :attr:`buffered_events` over the run.
    peak_buffered_events: int = 0

    @property
    def data_copies(self) -> int:
        """Stream copies kept under the master-dependent scheme (one per group)."""
        return self.groups

    @property
    def data_copies_without_sharing(self) -> int:
        """Stream copies a copy-per-query execution would keep."""
        return self.queries


class QueryGroup:
    """One compatibility group: a master query plus its dependent queries."""

    def __init__(self, signature: CompatibilitySignature,
                 master: QueryEngine):
        self.signature = signature
        self.master = master
        self.dependents: List[QueryEngine] = []
        self._master_signatures = {
            pattern_signature(pattern): pattern
            for pattern in master.query.patterns
        }
        buffer_seconds = DEFAULT_BUFFER_SECONDS
        if signature.window is not None:
            buffer_seconds = max(signature.window[1], signature.window[2])
        self._buffer_seconds = buffer_seconds
        #: The group's single shared copy of the (filtered) stream data.
        self.shared_buffer: Deque[Event] = deque()

    @property
    def engines(self) -> List[QueryEngine]:
        """Return the master followed by the dependent engines."""
        return [self.master] + self.dependents

    def add(self, engine: QueryEngine) -> None:
        """Add a dependent query to the group."""
        self.dependents.append(engine)

    # -- execution ------------------------------------------------------------

    def process_event(self, event: Event,
                      stats: SchedulerStats) -> List[Alert]:
        """Process one stream event through every query of the group."""
        alerts: List[Alert] = []

        # The master query has direct access to the data stream: it applies
        # the group's shared global constraints and matches its patterns.
        master_matcher = self.master.matcher.pattern_matcher
        if not master_matcher.passes_global_constraints(event):
            return alerts

        self._retain(event)

        master_matches = []
        matched_by_signature: Dict[Tuple, PatternMatch] = {}
        for pattern in self.master.query.patterns:
            stats.pattern_evaluations += 1
            match = master_matcher.match_pattern(event, pattern)
            if match is not None:
                master_matches.append(match)
                matched_by_signature[pattern_signature(pattern)] = match
        alerts.extend(self.master.process_matches(event, master_matches))

        # Dependent queries reuse the master's intermediate results for every
        # pattern they share with it and only evaluate their own remainder.
        for engine in self.dependents:
            dependent_matches: List[PatternMatch] = []
            for pattern in engine.query.patterns:
                signature = pattern_signature(pattern)
                if signature in self._master_signatures:
                    stats.pattern_evaluations_saved += 1
                    if signature in matched_by_signature:
                        dependent_matches.append(
                            _rebind(matched_by_signature[signature], pattern))
                    continue
                stats.pattern_evaluations += 1
                match = engine.matcher.pattern_matcher.match_pattern(
                    event, pattern)
                if match is not None:
                    dependent_matches.append(match)
            alerts.extend(engine.process_matches(event, dependent_matches))
        return alerts

    def finish(self) -> List[Alert]:
        """Flush every engine of the group at end of stream."""
        alerts: List[Alert] = []
        for engine in self.engines:
            alerts.extend(engine.finish())
        return alerts

    def _retain(self, event: Event) -> None:
        self.shared_buffer.append(event)
        cutoff = event.timestamp - self._buffer_seconds
        while self.shared_buffer and self.shared_buffer[0].timestamp < cutoff:
            self.shared_buffer.popleft()

    @property
    def buffered_events(self) -> int:
        """Return how many events the group's shared buffer currently holds."""
        return len(self.shared_buffer)


def _rebind(match: PatternMatch,
            pattern: ast.EventPatternDeclaration) -> PatternMatch:
    """Rebind a master's match to a dependent pattern's variable names."""
    return PatternMatch(
        alias=pattern.alias,
        event=match.event,
        bindings={
            pattern.subject.variable: match.event.subject,
            pattern.object.variable: match.event.obj,
        },
    )


class ConcurrentQueryScheduler:
    """Executes many SAQL queries over one stream with result sharing."""

    def __init__(self, sink: Optional[AlertSink] = None,
                 error_reporter: Optional[ErrorReporter] = None,
                 enable_sharing: bool = True):
        self._sink = sink
        self._error_reporter = error_reporter or ErrorReporter()
        self._enable_sharing = enable_sharing
        self._groups: Dict[Any, QueryGroup] = {}
        self._engines: List[QueryEngine] = []
        self.stats = SchedulerStats()

    # -- registration ------------------------------------------------------------

    def add_query(self, query: Union[str, ast.Query],
                  name: Optional[str] = None) -> QueryEngine:
        """Register one query; returns the engine created for it."""
        if isinstance(query, str):
            query = parse_query(query)
        engine = QueryEngine(query, name=name, sink=self._sink,
                             error_reporter=self._error_reporter)
        self._engines.append(engine)

        if self._enable_sharing:
            group_key: Any = compatibility_signature(query)
        else:
            # Without sharing every query is its own group (the baseline
            # behaviour of general-purpose stream engines in Section I).
            group_key = ("isolated", len(self._engines))

        group = self._groups.get(group_key)
        if group is None:
            signature = (group_key if isinstance(group_key,
                                                 CompatibilitySignature)
                         else compatibility_signature(query))
            self._groups[group_key] = QueryGroup(signature, engine)
        else:
            group.add(engine)

        self.stats.queries = len(self._engines)
        self.stats.groups = len(self._groups)
        return engine

    def add_queries(self, queries: Iterable[Union[str, ast.Query]]) -> None:
        """Register several queries at once."""
        for query in queries:
            self.add_query(query)

    @property
    def engines(self) -> List[QueryEngine]:
        """Return all registered query engines."""
        return list(self._engines)

    @property
    def groups(self) -> List[QueryGroup]:
        """Return the compatibility groups formed so far."""
        return list(self._groups.values())

    @property
    def error_reporter(self) -> ErrorReporter:
        """Return the shared error reporter."""
        return self._error_reporter

    # -- execution ----------------------------------------------------------------

    def process_event(self, event: Event) -> List[Alert]:
        """Feed one event to every group; returns the alerts it triggered."""
        self.stats.events_ingested += 1
        alerts: List[Alert] = []
        for group in self._groups.values():
            alerts.extend(group.process_event(event, self.stats))
        buffered = sum(group.buffered_events
                       for group in self._groups.values())
        self.stats.buffered_events = buffered
        self.stats.peak_buffered_events = max(
            self.stats.peak_buffered_events, buffered)
        self.stats.alerts += len(alerts)
        return alerts

    def finish(self) -> List[Alert]:
        """Flush every group at end of stream."""
        alerts: List[Alert] = []
        for group in self._groups.values():
            alerts.extend(group.finish())
        self.stats.alerts += len(alerts)
        return alerts

    def execute(self, stream: Iterable[Event]) -> List[Alert]:
        """Run all registered queries over a finite stream."""
        alerts: List[Alert] = []
        for event in stream:
            alerts.extend(self.process_event(event))
        alerts.extend(self.finish())
        return alerts
