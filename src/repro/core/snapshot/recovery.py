"""Recovery: restore a scheduler from a checkpoint and resume the journal.

The checkpoint cursor names the exact position the crashed run had
processed through, expressed over the journal's canonical
``(timestamp, event_id)`` order (which :class:`~repro.storage.EventDatabase`
maintains and :class:`~repro.storage.StreamReplayer` replays):

* ``watermark`` — the largest processed event timestamp;
* ``frontier_ids`` — the ids of every processed event *at* the watermark,
  so journal ties at the watermark are not re-delivered (re-feeding an
  already-folded event would double-count window state);
* ``last_event_id`` — the last processed event's id, for diagnostics.

Recovery is therefore exact: replay the journal from the checkpoint
watermark via the stream replayer, drop the frontier events, feed the
rest into the restored scheduler, and the run emits exactly the alerts of
an uninterrupted run — the checkpointed alert ledgers cover everything
before the cursor, the resumed stream derives everything after it, and no
alert is produced twice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, Iterable, Iterator, List, Optional

from repro.events.event import Event


@dataclass(frozen=True)
class ResumeCursor:
    """The journal position a checkpoint was taken at."""

    watermark: float
    last_event_id: int
    frontier_ids: FrozenSet[int]
    events_ingested: int = 0

    def covers(self, event: Event) -> bool:
        """Return True when the checkpointed run already processed ``event``."""
        if event.timestamp < self.watermark:
            return True
        return (event.timestamp == self.watermark
                and event.event_id in self.frontier_ids)


def resume_events(events: Iterable[Event],
                  cursor: Optional[ResumeCursor]) -> Iterator[Event]:
    """Yield the journal events the checkpointed run had not processed.

    ``events`` must follow the journal's ``(timestamp, event_id)`` order
    for the cursor to name a clean prefix; ``EventDatabase``/
    ``StreamReplayer`` streams do.  A ``None`` cursor passes everything
    through (no checkpoint: run from the start).

    Sources that can *seek* — ``StreamReplayer`` and ``EventDatabase``
    expose ``events_from_cursor`` backed by the segment indexes — skip
    the pre-cursor history without reading it; anything else falls back
    to filtering the full iterable.
    """
    if cursor is None:
        yield from events
        return
    seek = getattr(events, "events_from_cursor", None)
    if seek is not None:
        yield from seek(cursor)
        return
    for event in events:
        if not cursor.covers(event):
            yield event


def recover_scheduler(scheduler, snapshot: Dict[str, Any]) -> ResumeCursor:
    """Restore a snapshot into a freshly built scheduler; returns its cursor.

    The scheduler must already have the snapshot's queries registered
    (same names, same order) — ``restore_state`` validates this.
    """
    scheduler.restore_state(snapshot)
    return scheduler.restored_cursor


def recover_and_resume(scheduler, store, events: Iterable[Event],
                       batch_size: Optional[int] = None) -> List[Any]:
    """Restore from the store's latest checkpoint and finish the run.

    ``events`` is the full journal (e.g. a ``StreamReplayer``); the
    already-processed prefix is skipped via the checkpoint cursor.  With
    an empty store the run simply executes from the start.  Returns the
    complete run's alerts — checkpointed ledger plus resumed tail —
    which equal an uninterrupted run's alerts exactly.
    """
    snapshot = store.latest()
    if snapshot is not None:
        scheduler.restore_state(snapshot)
        events = resume_events(events, scheduler.restored_cursor)
    result = scheduler.execute(events, batch_size=batch_size)
    emitted = getattr(scheduler, "emitted_alerts", None)
    return emitted() if emitted is not None else result
