"""Value codecs for the snapshot wire format.

Everything a checkpoint (or a state-transfer payload) carries is reduced
to JSON-friendly primitives: dicts with string keys, lists, strings,
bools, ``None`` and finite numbers.  Container and domain types that JSON
cannot express directly are tagged with a single-key marker dict:

======================  =======================================
runtime value           wire form
======================  =======================================
non-finite float        ``{"__float__": "nan" | "inf" | "-inf"}``
tuple                   ``{"__tuple__": [...]}``
set / frozenset         ``{"__set__": [...]}`` (sorted by repr)
dict (any keys)         ``{"__dict__": [[key, value], ...]}``
Entity                  ``{"__entity__": {...}}``
Event                   ``{"__event__": {...}}``
SAQLExecutionError      ``{"__error__": "message"}``
======================  =======================================

The codecs are deliberately pickle-free: snapshots written by one process
must be loadable by a fresh interpreter (and inspectable by anything that
reads JSON).  ``json.dumps(..., allow_nan=False)`` round-trips every
encoded value.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.core.engine.alerts import Alert
from repro.core.engine.matching import PatternMatch
from repro.core.engine.windows import WindowKey
from repro.core.errors import SAQLExecutionError
from repro.events.entities import Entity
from repro.events.event import Event
from repro.events.serialization import (
    FLOAT_MARKER,
    decode_entity_dict,
    decode_float,
    encode_float,
    entity_to_dict,
    event_from_dict,
    event_to_dict,
)

#: Version tag stamped on every snapshot; bumped when the wire format
#: changes incompatibly.  Loaders refuse other versions.
SNAPSHOT_VERSION = 1


def check_version(snapshot: Dict[str, Any], kind: str) -> None:
    """Reject a snapshot whose format version this code does not speak."""
    version = snapshot.get("version")
    if version != SNAPSHOT_VERSION:
        raise ValueError(
            f"cannot restore {kind} snapshot of format version {version!r}; "
            f"this build reads version {SNAPSHOT_VERSION}")


# ---------------------------------------------------------------------------
# Generic runtime values (group keys, aggregation results, alert payloads)
# ---------------------------------------------------------------------------

def encode_value(value: Any) -> Any:
    """Encode an arbitrary engine runtime value into the wire form."""
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return encode_float(value)
    if isinstance(value, tuple):
        return {"__tuple__": [encode_value(item) for item in value]}
    if isinstance(value, list):
        return [encode_value(item) for item in value]
    if isinstance(value, (set, frozenset)):
        # Sets are unordered; sort by repr so equal sets encode identically
        # (mixed element types make a plain sort unreliable).
        return {"__set__": sorted((encode_value(item) for item in value),
                                  key=repr)}
    if isinstance(value, dict):
        return {"__dict__": [[encode_value(key), encode_value(item)]
                             for key, item in value.items()]}
    if isinstance(value, Entity):
        return {"__entity__": entity_to_dict(value)}
    if isinstance(value, Event):
        return {"__event__": event_to_dict(value)}
    if isinstance(value, SAQLExecutionError):
        return {"__error__": str(value)}
    raise TypeError(f"cannot snapshot value of type {type(value).__name__}: "
                    f"{value!r}")


def decode_value(value: Any) -> Any:
    """Invert :func:`encode_value`."""
    if isinstance(value, list):
        return [decode_value(item) for item in value]
    if isinstance(value, dict):
        if FLOAT_MARKER in value:
            return decode_float(value)
        if "__tuple__" in value:
            return tuple(decode_value(item) for item in value["__tuple__"])
        if "__set__" in value:
            return frozenset(decode_value(item)
                             for item in value["__set__"])
        if "__dict__" in value:
            return {decode_value(key): decode_value(item)
                    for key, item in value["__dict__"]}
        if "__entity__" in value:
            return decode_entity_dict(value["__entity__"])
        if "__event__" in value:
            return event_from_dict(value["__event__"])
        if "__error__" in value:
            return SAQLExecutionError(value["__error__"])
        raise ValueError(f"unknown snapshot marker in {value!r}")
    return value


# ---------------------------------------------------------------------------
# Engine domain records
# ---------------------------------------------------------------------------

def encode_match(match: PatternMatch) -> Dict[str, Any]:
    """Encode one pattern match (alias, event, entity bindings)."""
    return {
        "alias": match.alias,
        "event": event_to_dict(match.event),
        "bindings": [[name, entity_to_dict(entity)]
                     for name, entity in match.bindings.items()],
    }


def decode_match(data: Dict[str, Any]) -> PatternMatch:
    """Invert :func:`encode_match`."""
    return PatternMatch(
        alias=data["alias"],
        event=event_from_dict(data["event"]),
        bindings={name: decode_entity_dict(entity)
                  for name, entity in data["bindings"]},
    )


def encode_optional_match(match: Optional[PatternMatch]) -> Any:
    """Encode a possibly-absent pattern match."""
    return None if match is None else encode_match(match)


def decode_optional_match(data: Any) -> Optional[PatternMatch]:
    """Invert :func:`encode_optional_match`."""
    return None if data is None else decode_match(data)


def encode_window_key(key: WindowKey) -> Dict[str, Any]:
    """Encode one window identity."""
    return {"index": key.index, "start": encode_float(key.start),
            "end": encode_float(key.end)}


def decode_window_key(data: Dict[str, Any]) -> WindowKey:
    """Invert :func:`encode_window_key`."""
    return WindowKey(index=int(data["index"]),
                     start=decode_float(data["start"]),
                     end=decode_float(data["end"]))


def encode_alert(alert: Alert) -> Dict[str, Any]:
    """Encode one emitted alert for the exactly-once re-emission ledger."""
    return {
        "query_name": alert.query_name,
        "timestamp": encode_float(alert.timestamp),
        "data": encode_value(alert.data),
        "model_kind": alert.model_kind,
        "group_key": encode_value(alert.group_key),
        "window_start": (None if alert.window_start is None
                         else encode_float(alert.window_start)),
        "window_end": (None if alert.window_end is None
                       else encode_float(alert.window_end)),
        "agentid": alert.agentid,
    }


def decode_alert(data: Dict[str, Any]) -> Alert:
    """Invert :func:`encode_alert`."""
    return Alert(
        query_name=data["query_name"],
        timestamp=decode_float(data["timestamp"]),
        data=decode_value(data["data"]),
        model_kind=data["model_kind"],
        group_key=decode_value(data["group_key"]),
        window_start=(None if data["window_start"] is None
                      else decode_float(data["window_start"])),
        window_end=(None if data["window_end"] is None
                    else decode_float(data["window_end"])),
        agentid=data["agentid"],
    )


# ---------------------------------------------------------------------------
# Streaming accumulators (slot objects with plain-value __slots__)
# ---------------------------------------------------------------------------

def _all_slots(obj: Any) -> List[str]:
    """Every slot of an object, walking the MRO.

    ``type(obj).__slots__`` alone misses inherited slots: a subclass like
    ``_DistinctCountAcc`` declares ``__slots__ = ()`` and stores its state
    in the parent's ``values`` slot, which a single-class walk would
    silently drop from the snapshot.
    """
    slots: List[str] = []
    for klass in reversed(type(obj).__mro__):
        declared = getattr(klass, "__slots__", ())
        if isinstance(declared, str):
            declared = (declared,)
        slots.extend(name for name in declared if name not in slots)
    return slots


def encode_slots(obj: Any) -> Dict[str, Any]:
    """Encode a ``__slots__``-based accumulator's state generically."""
    return {slot: encode_value(getattr(obj, slot))
            for slot in _all_slots(obj)}


def restore_slots(obj: Any, data: Dict[str, Any]) -> None:
    """Load :func:`encode_slots` output back into a fresh accumulator.

    The accumulator is created by its plan factory first (so constructor
    parameters like a percentile rank are already right); this only fills
    the mutable state.  Decoded containers are coerced back to the
    mutable type the live accumulator uses (sets decode as frozensets).
    """
    for slot in _all_slots(obj):
        value = decode_value(data[slot])
        current = getattr(obj, slot, None)
        if isinstance(current, set) and not isinstance(value, set):
            value = set(value)
        elif isinstance(current, list) and not isinstance(value, list):
            value = list(value)
        setattr(obj, slot, value)
