"""Durable state snapshots: checkpoint/recovery and state transfer.

Long-running anomaly detection cannot afford to lose every open window,
partial sequence and invariant on a crash, and the work-stealing runtime
cannot migrate stateful lanes if "drain and wait" is the only way to move
per-host state.  This package defines one versioned, pickle-free wire
format — JSON-friendly dictionaries built on the event codecs in
:mod:`repro.events.serialization` — that serves both needs:

* **checkpointing** — :meth:`ConcurrentQueryScheduler.export_state`
  captures every engine's live state (window accumulators and panes,
  buffered match lists, state histories, partial sequences, invariant
  training, distinct seen-sets, alert ledgers) plus the scheduler's
  shared buffers, statistics and resume cursor; the
  :class:`~repro.storage.checkpoints.CheckpointStore` persists it;
* **recovery** — :func:`~repro.core.snapshot.recovery.resume_events`
  replays the journal exactly after the checkpoint cursor and
  ``restore_state`` rebuilds the schedulers, so a kill-and-restore run
  emits exactly the alerts of an uninterrupted run (the restored alert
  ledgers make re-emission exactly-once);
* **state transfer** — the sharded runtime's work stealer uses the same
  codecs to extract one agentid's slice of every engine's state on the
  donor shard and merge it into the thief, which turns sliding windows,
  state histories, multi-event sequences and ``distinct`` from static
  steal vetoes into migratable lanes.

The wire format is versioned via :data:`SNAPSHOT_VERSION`; loaders reject
snapshots from a different version instead of guessing.
"""

from repro.core.snapshot.codecs import (
    SNAPSHOT_VERSION,
    decode_alert,
    decode_match,
    decode_value,
    decode_window_key,
    encode_alert,
    encode_match,
    encode_value,
    encode_window_key,
)
from repro.core.snapshot.recovery import (
    ResumeCursor,
    recover_and_resume,
    recover_scheduler,
    resume_events,
)

__all__ = [
    "SNAPSHOT_VERSION",
    "ResumeCursor",
    "decode_alert",
    "decode_match",
    "decode_value",
    "decode_window_key",
    "encode_alert",
    "encode_match",
    "encode_value",
    "encode_window_key",
    "recover_and_resume",
    "recover_scheduler",
    "resume_events",
]
