"""Exception hierarchy for the SAQL system.

All errors raised by the parser, analyzer and engine derive from
:class:`SAQLError`, so applications can catch one type at the top level.
The engine's error reporter (Fig. 1 of the paper) collects these during
query execution instead of letting one bad query kill the stream.
"""

from __future__ import annotations

from typing import Optional


class SAQLError(Exception):
    """Base class for every error raised by the SAQL system."""


class SAQLParseError(SAQLError):
    """A syntax error in a SAQL query.

    Carries the line and column of the offending token so the CLI can show
    a pointer into the query text.
    """

    def __init__(self, message: str, line: Optional[int] = None,
                 column: Optional[int] = None):
        self.line = line
        self.column = column
        location = ""
        if line is not None:
            location = f" (line {line}"
            if column is not None:
                location += f", column {column}"
            location += ")"
        super().__init__(f"{message}{location}")


class SAQLSemanticError(SAQLError):
    """A query is syntactically valid but semantically inconsistent.

    Examples: referencing an undeclared entity variable, using ``ss[2]``
    when the state history only keeps two windows, or a cluster statement
    without a state block.
    """


class SAQLExecutionError(SAQLError):
    """A runtime failure while executing a query over the stream."""

    def __init__(self, message: str, query_name: Optional[str] = None):
        self.query_name = query_name
        prefix = f"[{query_name}] " if query_name else ""
        super().__init__(f"{prefix}{message}")
