"""The state maintainer: per-window, per-group stateful computation.

For stateful queries the engine folds the pattern matches of each sliding
window, partitioned by the query's ``group by`` keys.  When a window
closes, the state maintainer computes the state block's aggregation
definitions for every group and appends the resulting
:class:`WindowState` to that group's bounded history (``state[3] ss`` keeps
the current window plus two past windows, addressed as ``ss[0]``,
``ss[1]``, ``ss[2]`` in alert conditions).

Two execution modes share this class:

* **incremental** (the default when the state block lowers to an
  :class:`~repro.core.compile.accumulators.AccumulatorPlan`): each match
  updates streaming accumulators exactly once; for overlapping sliding
  windows (hop < length) matches land in *panes* of size
  ``gcd(hop, length)`` and a closing window merges the O(length/hop)
  panes that cover it.  No per-window match lists exist — only the
  accumulators plus one representative match per open (bucket, group)
  (match-buffer elision);
* **buffered** (``compiled=False``, ``incremental=False``, or a state
  block with no streaming form): the original accumulate-then-recompute
  path, kept as the semantic oracle for equivalence testing.
"""

from __future__ import annotations

import heapq
import itertools
import math
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, List, Optional, Sequence, Set, Tuple

from repro.core.compile.accumulators import (
    AccumulatorPlan,
    GroupAccumulator,
    compile_accumulator_plan,
)
from repro.core.compile.expressions import (
    compile_group_key,
    compile_state_definitions,
)
from repro.core.engine.matching import PatternMatch
from repro.core.engine.windows import WindowKey
from repro.core.errors import SAQLExecutionError
from repro.core.expr.evaluator import ExpressionEvaluator
from repro.core.language import ast
from repro.events.entities import Entity


@dataclass
class WindowState:
    """The computed state of one group for one closed window."""

    group_key: Any
    window: WindowKey
    fields: Dict[str, Any]
    representative: Optional[PatternMatch] = None
    match_count: int = 0

    def get_field(self, name: str) -> Any:
        """Return a computed state field (None when undefined)."""
        return self.fields.get(name)


class StateHistory:
    """Bounded history of a group's window states, most recent first."""

    def __init__(self, history_length: int):
        if history_length < 1:
            raise ValueError("history length must be at least 1")
        self._states: Deque[WindowState] = deque(maxlen=history_length)
        self._history_length = history_length

    def push(self, state: WindowState) -> None:
        """Record a newly closed window's state as the most recent entry."""
        self._states.appendleft(state)

    def get(self, index: int) -> Optional[WindowState]:
        """Return the state ``index`` windows ago (0 = current window)."""
        if index < 0 or index >= len(self._states):
            return None
        return self._states[index]

    @property
    def current(self) -> Optional[WindowState]:
        """Return the most recently closed window's state."""
        return self.get(0)

    @property
    def length(self) -> int:
        """Return how many window states are currently held."""
        return len(self._states)

    @property
    def capacity(self) -> int:
        """Return the configured history length."""
        return self._history_length

    def __iter__(self):
        return iter(self._states)


def _pane_geometry(spec: Optional[ast.WindowSpec]
                   ) -> Optional[Tuple[float, int, int]]:
    """Return (pane size, hop panes, length panes) for pane sharing.

    Pane (slice) sharing applies to overlapping time windows whose hop and
    length are commensurable: panes of size ``gcd(hop, length)`` tile
    every window exactly, window *i* covering panes
    ``[i * hop_panes, i * hop_panes + length_panes)``.

    Only integral-second geometry shares panes: with integer hop/length
    every pane boundary ``p * pane_size`` and window boundary
    ``i * hop`` is float-exact, so pane binning agrees bit-for-bit with
    :meth:`WindowAssigner.assign`'s containment checks.  Fractional
    seconds (where ``3 * 0.1 > 0.3`` style rounding could silently move
    a boundary timestamp between windows) fall back to per-window
    buckets, which use the assigner's own window set and therefore
    cannot disagree with the buffered oracle.
    """
    if spec is None or spec.kind != "time":
        return None
    hop = spec.effective_hop
    length = spec.length
    if not 0 < hop < length:
        return None
    # float() first: spec fields may be programmatically-built ints, and
    # int.is_integer only exists from Python 3.12.
    if not (float(hop).is_integer() and float(length).is_integer()):
        return None
    pane = math.gcd(int(hop), int(length))
    if pane <= 0:
        return None
    return float(pane), int(hop) // pane, int(length) // pane


class StateMaintainer:
    """Folds matches per window/group and computes window states."""

    def __init__(self, query: ast.Query,
                 context_factory=None,
                 compiled: bool = True,
                 incremental: Optional[bool] = None):
        if query.state is None:
            raise ValueError("StateMaintainer requires a query with a state block")
        self._query = query
        self._state = query.state
        self._context_factory = context_factory
        self._compiled_group_key: Optional[Callable[[PatternMatch], Any]] = None
        self._fields_compile_enabled = compiled
        self._compiled_fields_cache: Optional[
            Callable[[Sequence[PatternMatch]], Dict[str, Any]]] = None
        self._plan: Optional[AccumulatorPlan] = None
        if compiled:
            self._compiled_group_key = compile_group_key(query.state)
            if incremental is not False:
                self._plan = compile_accumulator_plan(query.state)
        spec = query.window
        self._window_spec = spec
        self._pane = _pane_geometry(spec) if self._plan is not None else None
        # (window) -> group key -> matches (buffered mode only).
        self._pending: Dict[WindowKey, Dict[Any, List[PatternMatch]]] = {}
        # (window) -> group key -> accumulators (incremental, one bucket
        # per window: tumbling/gapped/count windows, or explicit windows
        # handed to add_match).
        self._banks: Dict[WindowKey, Dict[Any, GroupAccumulator]] = {}
        # pane index -> group key -> accumulators (incremental pane
        # sharing for overlapping time windows).
        self._pane_groups: Dict[int, Dict[Any, GroupAccumulator]] = {}
        # Pane indices in eviction order (a pane outlives the first window
        # it serves; it is dropped when its last covering window closes).
        self._pane_heap: List[int] = []
        # Window indices currently open under pane sharing.
        self._open_indices: Set[int] = set()
        # Close frontier: windows below this index have closed via the
        # pane path.  A late match covering one of them must re-open it
        # with *only* its late contributions (the buffered path's
        # semantics — earlier matches were already reported when the
        # window first closed), so such windows take per-window buckets
        # in ``_banks`` instead of pane merging.  ``_late_threshold`` is
        # the first pane index whose covering windows are all unclosed;
        # the hot path pays one comparison against it.
        self._closed_frontier = 0
        self._late_threshold = 0
        # Min-heap of open windows, pushed when a window first opens; the
        # WindowKey rides along so popping a due window reuses the entry
        # instead of rebuilding the key, and the monotone tiebreak keeps
        # entries comparable if one window ever re-opens (late events).
        self._deadline_heap: List[Tuple[float, int, int, WindowKey]] = []
        self._heap_ties = itertools.count()
        self._histories: Dict[Any, StateHistory] = {}
        #: total matches accumulated (one per add_match call), for benchmarks
        self.total_matches = 0
        #: monotone ingest ordinal driving first/last/representative merges
        self._seq = 0
        #: matches currently retained (buffered lists, or one
        #: representative per open bucket group under elision)
        self.buffered_matches = 0
        #: peak of :attr:`buffered_matches` over the run
        self.peak_buffered_matches = 0

    # -- mode introspection --------------------------------------------------

    @property
    def _compiled_fields(self) -> Optional[
            Callable[[Sequence[PatternMatch]], Dict[str, Any]]]:
        """Buffered-path state-field closures, compiled on first use.

        Incremental mode never consults them, so registration skips the
        compile; the buffered fallback (and the equivalence suite, which
        reads this attribute directly) builds them on demand.
        """
        if self._compiled_fields_cache is None and self._fields_compile_enabled:
            self._compiled_fields_cache = compile_state_definitions(
                self._state)
        return self._compiled_fields_cache

    @property
    def incremental(self) -> bool:
        """True when state is folded into streaming accumulators."""
        return self._plan is not None

    @property
    def shares_panes(self) -> bool:
        """True when overlapping windows share per-pane partials.

        The engine then ingests via :meth:`add_match_sliding` (one touch
        per match) instead of one :meth:`add_match` per containing window.
        """
        return self._pane is not None

    @property
    def pane_size(self) -> Optional[float]:
        """Return the shared pane length in seconds (None without sharing)."""
        return self._pane[0] if self._pane is not None else None

    # -- accumulation -------------------------------------------------------

    def add_match(self, window: WindowKey, match: PatternMatch) -> None:
        """Fold one pattern match into its window/group bucket."""
        self.total_matches += 1
        seq = self._seq
        self._seq = seq + 1
        if self._plan is not None:
            banks = self._banks
            groups = banks.get(window)
            if groups is None:
                groups = banks[window] = {}
                self._push_deadline(window)
            group_key = self.group_key_for(match)
            bucket = groups.get(group_key)
            if bucket is None:
                bucket = groups[group_key] = self._plan.new_group()
                self._grew_buckets(1)
            self._plan.update(bucket, match, seq)
            return
        groups = self._pending.get(window)
        if groups is None:
            groups = self._pending[window] = {}
            self._push_deadline(window)
        group_key = self.group_key_for(match)
        matches = groups.get(group_key)
        if matches is None:
            groups[group_key] = [match]
        else:
            matches.append(match)
        self._grew_buckets(1)

    def add_match_sliding(self, match: PatternMatch) -> None:
        """Fold one match into its pane (pane-sharing fast path).

        Each match is touched exactly once: it updates the accumulators of
        its single pane/group bucket, while the buffered path would store
        and later re-reduce it once per containing window
        (``length / hop`` times).
        """
        assert self._pane is not None and self._plan is not None
        self.total_matches += 1
        seq = self._seq
        self._seq = seq + 1
        pane_size = self._pane[0]
        timestamp = match.timestamp
        pane = int(timestamp // pane_size)
        # Guard float division landing on the wrong side of a boundary.
        if pane * pane_size > timestamp:
            pane -= 1
        elif (pane + 1) * pane_size <= timestamp:
            pane += 1
        if pane < self._late_threshold:
            self._add_late_sliding(pane, match, seq)
            return
        groups = self._pane_groups.get(pane)
        if groups is None:
            groups = self._pane_groups[pane] = {}
            heapq.heappush(self._pane_heap, pane)
            self._register_windows_for_pane(pane)
        group_key = self.group_key_for(match)
        bucket = groups.get(group_key)
        if bucket is None:
            bucket = groups[group_key] = self._plan.new_group()
            self._grew_buckets(1)
        self._plan.update(bucket, match, seq)

    def _covering_range(self, pane: int) -> Tuple[int, int]:
        """Window indices covering a pane: (first, last), both inclusive.

        Window *i* covers panes ``[i * hop_panes, i * hop_panes +
        length_panes)``, so the covering indices run from
        ``ceil((pane + 1 - length_panes) / hop_panes)`` (clamped at 0)
        through ``pane // hop_panes``.
        """
        assert self._pane is not None
        _, hop_panes, length_panes = self._pane
        first = -((length_panes - 1 - pane) // hop_panes)
        return (first if first > 0 else 0), pane // hop_panes

    def _window_for_index(self, index: int) -> WindowKey:
        """Build the key of sliding window ``index`` from the query spec."""
        spec = self._window_spec
        assert spec is not None
        start = index * spec.effective_hop
        return WindowKey(index=index, start=start,
                         end=start + spec.length)

    def _register_windows_for_pane(self, pane: int) -> None:
        """Open every unclosed window covering a newly created pane.

        Runs once per pane (not per event).  Windows behind the close
        frontier are excluded — late matches re-open those through
        per-window buckets.
        """
        first, last = self._covering_range(pane)
        if first < self._closed_frontier:
            first = self._closed_frontier
        open_indices = self._open_indices
        for index in range(first, last + 1):
            if index not in open_indices:
                open_indices.add(index)
                self._push_deadline(self._window_for_index(index))

    def _add_late_sliding(self, pane: int, match: PatternMatch,
                          seq: int) -> None:
        """Fold a match at least one of whose covering windows has closed.

        Already-closed windows re-open as per-window buckets that see only
        their late matches — exactly what the buffered path's re-created
        (window, group) lists would hold; the pane keeps serving the still
        unclosed windows at or past the frontier.
        """
        assert self._pane is not None and self._plan is not None
        first, last = self._covering_range(pane)
        frontier = self._closed_frontier
        plan = self._plan
        group_key = self.group_key_for(match)
        stop = last + 1 if last < frontier else frontier
        for index in range(first, stop):
            window = self._window_for_index(index)
            groups = self._banks.get(window)
            if groups is None:
                groups = self._banks[window] = {}
                self._push_deadline(window)
            bucket = groups.get(group_key)
            if bucket is None:
                bucket = groups[group_key] = plan.new_group()
                self._grew_buckets(1)
            plan.update(bucket, match, seq)
        if last < frontier:
            return
        groups = self._pane_groups.get(pane)
        if groups is None:
            groups = self._pane_groups[pane] = {}
            heapq.heappush(self._pane_heap, pane)
            self._register_windows_for_pane(pane)
        bucket = groups.get(group_key)
        if bucket is None:
            bucket = groups[group_key] = plan.new_group()
            self._grew_buckets(1)
        plan.update(bucket, match, seq)

    def _push_deadline(self, window: WindowKey) -> None:
        heapq.heappush(self._deadline_heap,
                       (window.end, window.index, next(self._heap_ties),
                        window))

    def _grew_buckets(self, added: int) -> None:
        grown = self.buffered_matches + added
        self.buffered_matches = grown
        if grown > self.peak_buffered_matches:
            self.peak_buffered_matches = grown

    def group_key_for(self, match: PatternMatch) -> Any:
        """Evaluate the ``group by`` keys for one match.

        Entity-variable keys (``group by p``) group by the entity's default
        attribute (the process executable name, mirroring the paper's
        per-application grouping); attribute keys (``group by i.dstip``)
        group by that attribute's value.  Without a ``group by`` clause all
        matches fall into a single group.
        """
        if self._compiled_group_key is not None:
            return self._compiled_group_key(match)
        if not self._state.group_by:
            return "__all__"
        values: List[Any] = []
        for key_expr in self._state.group_by:
            values.append(self._evaluate_group_key(key_expr, match))
        if len(values) == 1:
            return values[0]
        return tuple(values)

    def _evaluate_group_key(self, expr: ast.Expression,
                            match: PatternMatch) -> Any:
        if isinstance(expr, ast.Identifier):
            bound = match.bindings.get(expr.name)
            if isinstance(bound, Entity):
                return bound.default_value()
            if expr.name == match.alias:
                return match.event.agentid
            return None
        if isinstance(expr, ast.AttributeRef):
            base = expr.base
            if isinstance(base, ast.Identifier):
                bound = match.bindings.get(base.name)
                if isinstance(bound, Entity):
                    return bound.get_attr(expr.attr)
                if base.name == match.alias:
                    return match.event.get_attr(expr.attr)
            return None
        return None

    # -- window closing -------------------------------------------------------

    def open_windows(self) -> List[WindowKey]:
        """Return the windows that currently hold accumulated state."""
        if self._plan is not None:
            windows = list(self._banks.keys())
            if self._open_indices:
                windows.extend(self._window_for_index(index)
                               for index in sorted(self._open_indices))
            return windows
        return list(self._pending.keys())

    def _is_open(self, window: WindowKey) -> bool:
        if self._plan is not None:
            return (window.index in self._open_indices
                    or window in self._banks)
        return window in self._pending

    def has_due_windows(self, watermark: float) -> bool:
        """Return True when at least one open window ends at or before ``watermark``."""
        heap = self._deadline_heap
        return bool(heap) and heap[0][0] <= watermark

    def earliest_open_deadline(self) -> Optional[float]:
        """Return the end time of the earliest-ending open window, if any.

        The work-stealing handoff uses this as the drain signal: a shard
        has drained through a cut time ``C`` once no open window ends at
        or before ``C``.  Stale heap entries (windows already closed
        directly through :meth:`close_window`) are discarded on the way,
        mirroring :meth:`pop_next_due_window`.
        """
        heap = self._deadline_heap
        while heap:
            if self._is_open(heap[0][3]):
                return heap[0][0]
            heapq.heappop(heap)
        return None

    def pop_next_due_window(self, watermark: float) -> Optional[WindowKey]:
        """Pop and return the earliest-ending open window due at ``watermark``.

        Due windows come back one at a time in end-time order (the order
        they must close in), so an error while processing one window
        leaves the deadlines of the remaining due windows intact for the
        next call.  This replaces the per-event scan-and-sort over all
        open windows: when nothing is due the cost is one heap peek, and
        the popped entry carries its :class:`WindowKey` so nothing is
        rebuilt on the close path.
        """
        heap = self._deadline_heap
        while heap and heap[0][0] <= watermark:
            window = heapq.heappop(heap)[3]
            # Skip stale deadlines for windows already closed directly via
            # close_window (the heap is not updated on that path).
            if self._is_open(window):
                return window
        return None

    def close_window(self, window: WindowKey) -> List[WindowState]:
        """Compute and record the states of all groups of a closing window."""
        if self._plan is not None:
            return self._close_incremental(window)
        groups = self._pending.pop(window, None)
        if not groups:
            return []
        # The lists left _pending above, so they are no longer retained —
        # decrement before computing state, which may raise mid-loop.
        self.buffered_matches -= sum(len(matches)
                                     for matches in groups.values())
        states: List[WindowState] = []
        history_length = self._state.history
        histories = self._histories
        for group_key, matches in groups.items():
            state = self._compute_state(window, group_key, matches)
            history = histories.get(group_key)
            if history is None:
                history = histories[group_key] = StateHistory(history_length)
            history.push(state)
            states.append(state)
        return states

    def _close_incremental(self, window: WindowKey) -> List[WindowState]:
        plan = self._plan
        assert plan is not None
        merged: Dict[Any, GroupAccumulator]
        if window.index in self._open_indices:
            self._open_indices.discard(window.index)
            assert self._pane is not None
            _, hop_panes, length_panes = self._pane
            first_pane = window.index * hop_panes
            merged = {}
            pane_groups = self._pane_groups
            for pane in range(first_pane, first_pane + length_panes):
                groups = pane_groups.get(pane)
                if not groups:
                    continue
                for group_key, partial in groups.items():
                    bucket = merged.get(group_key)
                    if bucket is None:
                        bucket = merged[group_key] = plan.new_group()
                    plan.merge(bucket, partial)
            # A pane-open window may additionally carry an overlay bucket
            # in _banks: contributions that bypass the shared panes, such
            # as an imported migration slice.  Fold it in here so the
            # window closes exactly once with everything it is owed.
            overlay = self._banks.pop(window, None)
            if overlay:
                self.buffered_matches -= len(overlay)
                for group_key, partial in overlay.items():
                    bucket = merged.get(group_key)
                    if bucket is None:
                        bucket = merged[group_key] = plan.new_group()
                    plan.merge(bucket, partial)
            # Panes no window after this one covers can go; windows close
            # in index order (uniform length), so the threshold only moves
            # forward.
            self._evict_panes_before(first_pane + hop_panes)
            if window.index >= self._closed_frontier:
                self._closed_frontier = window.index + 1
                # First pane whose covering windows are all unclosed.
                self._late_threshold = (self._closed_frontier * hop_panes
                                        + length_panes - hop_panes)
            # Emit groups in first-arrival order — the buffered path's
            # dict-insertion order — not pane order, which diverges when
            # events arrive out of timestamp order.
            if len(merged) > 1:
                merged = dict(sorted(
                    merged.items(),
                    key=lambda entry: entry[1].first_seq))
        else:
            groups = self._banks.pop(window, None)
            if not groups:
                return []
            self.buffered_matches -= len(groups)
            merged = groups
        states: List[WindowState] = []
        history_length = self._state.history
        histories = self._histories
        for group_key, bucket in merged.items():
            state = WindowState(
                group_key=group_key,
                window=window,
                fields=plan.finalize(bucket),
                representative=bucket.rep,
                match_count=bucket.count,
            )
            history = histories.get(group_key)
            if history is None:
                history = histories[group_key] = StateHistory(history_length)
            history.push(state)
            states.append(state)
        return states

    def _evict_panes_before(self, threshold: int) -> None:
        heap = self._pane_heap
        pane_groups = self._pane_groups
        dropped = 0
        while heap and heap[0] < threshold:
            groups = pane_groups.pop(heapq.heappop(heap), None)
            if groups:
                dropped += len(groups)
        if dropped:
            self.buffered_matches -= dropped

    def _compute_state(self, window: WindowKey, group_key: Any,
                       matches: List[PatternMatch]) -> WindowState:
        if self._compiled_fields is not None:
            fields = self._compiled_fields(matches)
            return WindowState(
                group_key=group_key,
                window=window,
                fields=fields,
                representative=matches[-1] if matches else None,
                match_count=len(matches),
            )
        from repro.core.engine.context import AggregationContext

        context = AggregationContext(matches)
        evaluator = ExpressionEvaluator(context)
        fields = {}
        for definition in self._state.definitions:
            fields[definition.name] = evaluator.evaluate(definition.expr)
        return WindowState(
            group_key=group_key,
            window=window,
            fields=fields,
            representative=matches[-1] if matches else None,
            match_count=len(matches),
        )

    # -- snapshots / state transfer -------------------------------------------

    def _encode_bucket(self, bucket: GroupAccumulator) -> Dict[str, Any]:
        from repro.core.snapshot.codecs import (encode_optional_match,
                                                encode_slots)
        return {
            "slots": [encode_slots(accumulator)
                      for accumulator in bucket.slots],
            "rep": encode_optional_match(bucket.rep),
            "rep_seq": bucket.rep_seq,
            "first_seq": bucket.first_seq,
            "count": bucket.count,
            "error": None if bucket.error is None else str(bucket.error),
        }

    def _decode_bucket(self, data: Dict[str, Any]) -> GroupAccumulator:
        from repro.core.snapshot.codecs import (decode_optional_match,
                                                restore_slots)
        assert self._plan is not None
        bucket = self._plan.new_group()
        if len(bucket.slots) != len(data["slots"]):
            raise ValueError(
                "snapshot accumulator layout does not match this query's "
                f"plan ({len(data['slots'])} slots vs {len(bucket.slots)})")
        for accumulator, slot_data in zip(bucket.slots, data["slots"]):
            restore_slots(accumulator, slot_data)
        bucket.rep = decode_optional_match(data["rep"])
        bucket.rep_seq = int(data["rep_seq"])
        bucket.first_seq = int(data["first_seq"])
        bucket.count = int(data["count"])
        error = data["error"]
        bucket.error = None if error is None else SAQLExecutionError(error)
        return bucket

    def _encode_group_buckets(self, groups: Dict[Any, GroupAccumulator]
                              ) -> List[List[Any]]:
        from repro.core.snapshot.codecs import encode_value
        return [[encode_value(group_key), self._encode_bucket(bucket)]
                for group_key, bucket in groups.items()]

    def _decode_group_buckets(self, data) -> Dict[Any, GroupAccumulator]:
        from repro.core.snapshot.codecs import decode_value
        return {decode_value(group_key): self._decode_bucket(bucket)
                for group_key, bucket in data}

    @staticmethod
    def _encode_window_state(state: WindowState) -> Dict[str, Any]:
        from repro.core.snapshot.codecs import (encode_optional_match,
                                                encode_value,
                                                encode_window_key)
        return {
            "group_key": encode_value(state.group_key),
            "window": encode_window_key(state.window),
            "fields": [[name, encode_value(value)]
                       for name, value in state.fields.items()],
            "representative": encode_optional_match(state.representative),
            "match_count": state.match_count,
        }

    @staticmethod
    def _decode_window_state(data: Dict[str, Any]) -> WindowState:
        from repro.core.snapshot.codecs import (decode_optional_match,
                                                decode_value,
                                                decode_window_key)
        return WindowState(
            group_key=decode_value(data["group_key"]),
            window=decode_window_key(data["window"]),
            fields={name: decode_value(value)
                    for name, value in data["fields"]},
            representative=decode_optional_match(data["representative"]),
            match_count=int(data["match_count"]),
        )

    def _encode_history(self, history: StateHistory) -> List[Dict[str, Any]]:
        # Iteration yields most-recent-first; the decoder pushes in reverse.
        return [self._encode_window_state(state) for state in history]

    def _decode_history(self, entries) -> StateHistory:
        history = StateHistory(self._state.history)
        for data in reversed(entries):
            history.push(self._decode_window_state(data))
        return history

    @property
    def _mode_tag(self) -> str:
        return "incremental" if self._plan is not None else "buffered"

    def export_state(self) -> Dict[str, Any]:
        """Snapshot every open bucket, pane partial and group history."""
        from repro.core.snapshot.codecs import (encode_match, encode_value,
                                                encode_window_key)
        data: Dict[str, Any] = {
            "mode": self._mode_tag,
            "panes": self._pane is not None,
            "seq": self._seq,
            "total_matches": self.total_matches,
            "buffered_matches": self.buffered_matches,
            "peak_buffered_matches": self.peak_buffered_matches,
            "histories": [
                [encode_value(group_key), self._encode_history(history)]
                for group_key, history in self._histories.items()
            ],
        }
        if self._plan is None:
            data["pending"] = [
                [encode_window_key(window),
                 [[encode_value(group_key),
                   [encode_match(match) for match in matches]]
                  for group_key, matches in groups.items()]]
                for window, groups in self._pending.items()
            ]
            return data
        data["banks"] = [
            [encode_window_key(window), self._encode_group_buckets(groups)]
            for window, groups in self._banks.items()
        ]
        if self._pane is not None:
            data["pane_groups"] = [
                [pane, self._encode_group_buckets(groups)]
                for pane, groups in self._pane_groups.items()
            ]
            data["open_indices"] = sorted(self._open_indices)
            data["closed_frontier"] = self._closed_frontier
            data["late_threshold"] = self._late_threshold
        return data

    def _check_mode(self, data: Dict[str, Any], what: str) -> None:
        if data["mode"] != self._mode_tag or data["panes"] != (
                self._pane is not None):
            raise ValueError(
                f"{what} was taken in {data['mode']} mode "
                f"(panes={data['panes']}) but this maintainer runs "
                f"{self._mode_tag} (panes={self._pane is not None}); "
                "restore with the same compiled/incremental configuration")

    def restore_state(self, data: Dict[str, Any]) -> None:
        """Restore :meth:`export_state` output into this maintainer.

        The maintainer must be freshly built for the same query with the
        same execution mode; the deadline and pane heaps are rebuilt from
        the restored open windows.
        """
        from repro.core.snapshot.codecs import (decode_match, decode_value,
                                                decode_window_key)
        self._check_mode(data, "state snapshot")
        self._seq = int(data["seq"])
        self.total_matches = int(data["total_matches"])
        self.buffered_matches = int(data["buffered_matches"])
        self.peak_buffered_matches = int(data["peak_buffered_matches"])
        self._histories = {
            decode_value(group_key): self._decode_history(entries)
            for group_key, entries in data["histories"]
        }
        self._deadline_heap = []
        self._heap_ties = itertools.count()
        if self._plan is None:
            self._pending = {}
            for window_data, groups_data in data["pending"]:
                window = decode_window_key(window_data)
                self._pending[window] = {
                    decode_value(group_key): [decode_match(match)
                                              for match in matches]
                    for group_key, matches in groups_data
                }
                self._push_deadline(window)
            return
        self._banks = {}
        for window_data, groups_data in data["banks"]:
            window = decode_window_key(window_data)
            self._banks[window] = self._decode_group_buckets(groups_data)
            self._push_deadline(window)
        if self._pane is not None:
            self._pane_groups = {
                int(pane): self._decode_group_buckets(groups_data)
                for pane, groups_data in data["pane_groups"]
            }
            self._pane_heap = sorted(self._pane_groups)
            self._open_indices = set(int(index)
                                     for index in data["open_indices"])
            self._closed_frontier = int(data["closed_frontier"])
            self._late_threshold = int(data["late_threshold"])
            for index in sorted(self._open_indices):
                self._push_deadline(self._window_for_index(index))

    def extract_agent_state(self, match_predicate) -> Dict[str, Any]:
        """Remove and return (wire form) one host's slice of the state.

        ``match_predicate`` decides ownership per :class:`PatternMatch`.
        Sound only for shardable queries, whose group keys are host-local:
        every bucket and history then holds matches of exactly one host,
        so the bucket's representative match attributes it.  The windows
        and panes themselves (and the close frontier) are engine-global
        and stay behind; a window left with no groups simply closes empty.
        """
        from repro.core.snapshot.codecs import (encode_match, encode_value,
                                                encode_window_key)
        payload: Dict[str, Any] = {
            "mode": self._mode_tag,
            "panes": self._pane is not None,
            "max_seq": self._seq,
        }
        histories = []
        for group_key, history in list(self._histories.items()):
            representative = next(
                (state.representative for state in history
                 if state.representative is not None), None)
            if representative is not None and match_predicate(representative):
                histories.append([encode_value(group_key),
                                  self._encode_history(history)])
                del self._histories[group_key]
        payload["histories"] = histories
        if self._plan is None:
            pending = []
            for window, groups in list(self._pending.items()):
                moved = []
                for group_key, matches in list(groups.items()):
                    if matches and match_predicate(matches[0]):
                        moved.append([encode_value(group_key),
                                      [encode_match(match)
                                       for match in matches]])
                        self.buffered_matches -= len(matches)
                        del groups[group_key]
                if moved:
                    pending.append([encode_window_key(window), moved])
                if not groups:
                    del self._pending[window]
            payload["pending"] = pending
            return payload

        def split(groups: Dict[Any, GroupAccumulator]) -> List[List[Any]]:
            moved = []
            for group_key, bucket in list(groups.items()):
                if bucket.rep is not None and match_predicate(bucket.rep):
                    moved.append([encode_value(group_key),
                                  self._encode_bucket(bucket)])
                    self.buffered_matches -= 1
                    del groups[group_key]
            return moved

        banks = []
        for window, groups in list(self._banks.items()):
            moved = split(groups)
            if moved:
                banks.append([encode_window_key(window), moved])
            if not groups:
                del self._banks[window]
        payload["banks"] = banks
        if self._pane is not None:
            pane_buckets = []
            for pane, groups in list(self._pane_groups.items()):
                moved = split(groups)
                if moved:
                    pane_buckets.append([pane, moved])
                # Emptied panes stay registered in the pane heap; eviction
                # tolerates panes with no groups.
            payload["pane_buckets"] = pane_buckets
            # Windows below this index already closed here *with* the
            # pane partials merged in; the importer must credit each
            # partial only to the windows this maintainer still owed it
            # to, or those windows would alert twice.
            payload["closed_frontier"] = self._closed_frontier
        return payload

    def merge_agent_state(self, payload: Dict[str, Any]) -> None:
        """Fold a donor's :meth:`extract_agent_state` slice into this state.

        The donor's ingest ordinals ride along so first/last ordering
        inside the imported buckets survives; this maintainer's own
        ordinal counter jumps past them, making every future local match
        compare later — which is correct, because the migration protocol
        holds the victim's events until after the import.  Imported pane
        partials whose early covering windows have already closed here
        re-open those windows through per-window buckets, exactly like
        late events do.
        """
        from repro.core.snapshot.codecs import (decode_match, decode_value,
                                                decode_window_key)
        self._check_mode(payload, "transferred state")
        max_seq = int(payload["max_seq"])
        if max_seq >= self._seq:
            self._seq = max_seq + 1
        for group_key, entries in payload["histories"]:
            self._histories[decode_value(group_key)] = (
                self._decode_history(entries))
        if self._plan is None:
            for window_data, groups_data in payload["pending"]:
                window = decode_window_key(window_data)
                groups = self._pending.get(window)
                if groups is None:
                    groups = self._pending[window] = {}
                    self._push_deadline(window)
                for group_data, matches_data in groups_data:
                    group_key = decode_value(group_data)
                    matches = [decode_match(match)
                               for match in matches_data]
                    existing = groups.get(group_key)
                    if existing is None:
                        groups[group_key] = matches
                    else:
                        # Imported pre-cut matches precede local ones.
                        groups[group_key] = matches + existing
                    self._grew_buckets(len(matches))
            return
        for window_data, groups_data in payload["banks"]:
            window = decode_window_key(window_data)
            groups = self._banks.get(window)
            if groups is None:
                groups = self._banks[window] = {}
                self._push_deadline(window)
            for group_data, bucket_data in groups_data:
                group_key = decode_value(group_data)
                bucket = self._decode_bucket(bucket_data)
                existing = groups.get(group_key)
                if existing is None:
                    groups[group_key] = bucket
                    self._grew_buckets(1)
                else:
                    self._plan.merge(existing, bucket)
        if self._pane is not None:
            donor_frontier = int(payload.get("closed_frontier", 0))
            for pane, groups_data in payload.get("pane_buckets", []):
                for group_data, bucket_data in groups_data:
                    self._merge_pane_partial(int(pane),
                                             decode_value(group_data),
                                             self._decode_bucket(bucket_data),
                                             donor_frontier)

    def _merge_pane_partial(self, pane: int, group_key: Any,
                            partial: GroupAccumulator,
                            donor_frontier: int) -> None:
        """Credit an imported pane partial to the windows still owed it.

        The donor already merged this pane's partial into every window it
        closed (indices below ``donor_frontier``) — those alerts were
        emitted there.  The windows the donor still owed the partial to
        (covering indices at or past its frontier) are credited here as
        per-window *overlay* buckets in ``_banks`` rather than through
        the shared panes: this maintainer's own frontier may trail the
        donor's, and a shared-pane install would re-credit windows the
        donor already alerted.  The close path folds overlay buckets into
        the pane merge, so each owed window alerts exactly once.
        """
        assert self._pane is not None and self._plan is not None
        plan = self._plan
        first, last = self._covering_range(pane)
        if first < donor_frontier:
            first = donor_frontier
        for index in range(first, last + 1):
            window = self._window_for_index(index)
            groups = self._banks.get(window)
            if groups is None:
                groups = self._banks[window] = {}
                self._push_deadline(window)
            bucket = groups.get(group_key)
            if bucket is None:
                bucket = groups[group_key] = plan.new_group()
                self._grew_buckets(1)
            plan.merge(bucket, partial)

    # -- history access ---------------------------------------------------------

    def history_for(self, group_key: Any) -> StateHistory:
        """Return (creating if necessary) the history of one group."""
        return self._histories.setdefault(
            group_key, StateHistory(self._state.history))

    @property
    def group_count(self) -> int:
        """Return the number of groups with recorded history."""
        return len(self._histories)

    @property
    def state_name(self) -> str:
        """Return the state block's declared name (e.g. ``ss``)."""
        return self._state.name
