"""The state maintainer: per-window, per-group stateful computation.

For stateful queries the engine accumulates the pattern matches of each
sliding window, partitioned by the query's ``group by`` keys.  When a
window closes, the state maintainer evaluates the state block's aggregation
definitions for every group and appends the resulting
:class:`WindowState` to that group's bounded history (``state[3] ss`` keeps
the current window plus two past windows, addressed as ``ss[0]``,
``ss[1]``, ``ss[2]`` in alert conditions).
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional, Sequence, Tuple

from repro.core.compile.expressions import (
    compile_group_key,
    compile_state_definitions,
)
from repro.core.engine.matching import PatternMatch
from repro.core.engine.windows import WindowKey
from repro.core.expr.evaluator import ExpressionEvaluator
from repro.core.language import ast
from repro.events.entities import Entity


@dataclass
class WindowState:
    """The computed state of one group for one closed window."""

    group_key: Any
    window: WindowKey
    fields: Dict[str, Any]
    representative: Optional[PatternMatch] = None
    match_count: int = 0

    def get_field(self, name: str) -> Any:
        """Return a computed state field (None when undefined)."""
        return self.fields.get(name)


class StateHistory:
    """Bounded history of a group's window states, most recent first."""

    def __init__(self, history_length: int):
        if history_length < 1:
            raise ValueError("history length must be at least 1")
        self._states: Deque[WindowState] = deque(maxlen=history_length)
        self._history_length = history_length

    def push(self, state: WindowState) -> None:
        """Record a newly closed window's state as the most recent entry."""
        self._states.appendleft(state)

    def get(self, index: int) -> Optional[WindowState]:
        """Return the state ``index`` windows ago (0 = current window)."""
        if index < 0 or index >= len(self._states):
            return None
        return self._states[index]

    @property
    def current(self) -> Optional[WindowState]:
        """Return the most recently closed window's state."""
        return self.get(0)

    @property
    def length(self) -> int:
        """Return how many window states are currently held."""
        return len(self._states)

    @property
    def capacity(self) -> int:
        """Return the configured history length."""
        return self._history_length

    def __iter__(self):
        return iter(self._states)


class StateMaintainer:
    """Accumulates matches per window/group and computes window states."""

    def __init__(self, query: ast.Query,
                 context_factory=None,
                 compiled: bool = True):
        if query.state is None:
            raise ValueError("StateMaintainer requires a query with a state block")
        self._query = query
        self._state = query.state
        self._context_factory = context_factory
        self._compiled_group_key: Optional[Callable[[PatternMatch], Any]] = None
        self._compiled_fields: Optional[
            Callable[[Sequence[PatternMatch]], Dict[str, Any]]] = None
        if compiled:
            self._compiled_group_key = compile_group_key(query.state)
            self._compiled_fields = compile_state_definitions(query.state)
        # (window index) -> group key -> matches
        self._pending: Dict[WindowKey, Dict[Any, List[PatternMatch]]] = {}
        # Min-heap of open-window ends, pushed when a window first receives
        # a match; lets the engine close due windows without scanning every
        # open window per event.
        self._deadline_heap: List[Tuple[float, int, float]] = []
        self._histories: Dict[Any, StateHistory] = {}
        #: total matches accumulated, for benchmarks
        self.total_matches = 0

    # -- accumulation -------------------------------------------------------

    def add_match(self, window: WindowKey, match: PatternMatch) -> None:
        """Add one pattern match to its window/group bucket."""
        group_key = self.group_key_for(match)
        groups = self._pending.get(window)
        if groups is None:
            groups = self._pending[window] = {}
            heapq.heappush(self._deadline_heap,
                           (window.end, window.index, window.start))
        groups.setdefault(group_key, []).append(match)
        self.total_matches += 1

    def group_key_for(self, match: PatternMatch) -> Any:
        """Evaluate the ``group by`` keys for one match.

        Entity-variable keys (``group by p``) group by the entity's default
        attribute (the process executable name, mirroring the paper's
        per-application grouping); attribute keys (``group by i.dstip``)
        group by that attribute's value.  Without a ``group by`` clause all
        matches fall into a single group.
        """
        if self._compiled_group_key is not None:
            return self._compiled_group_key(match)
        if not self._state.group_by:
            return "__all__"
        values: List[Any] = []
        for key_expr in self._state.group_by:
            values.append(self._evaluate_group_key(key_expr, match))
        if len(values) == 1:
            return values[0]
        return tuple(values)

    def _evaluate_group_key(self, expr: ast.Expression,
                            match: PatternMatch) -> Any:
        if isinstance(expr, ast.Identifier):
            bound = match.bindings.get(expr.name)
            if isinstance(bound, Entity):
                return bound.default_value()
            if expr.name == match.alias:
                return match.event.agentid
            return None
        if isinstance(expr, ast.AttributeRef):
            base = expr.base
            if isinstance(base, ast.Identifier):
                bound = match.bindings.get(base.name)
                if isinstance(bound, Entity):
                    return bound.get_attr(expr.attr)
                if base.name == match.alias:
                    return match.event.get_attr(expr.attr)
            return None
        return None

    # -- window closing -------------------------------------------------------

    def open_windows(self) -> List[WindowKey]:
        """Return the windows that currently hold accumulated matches."""
        return list(self._pending.keys())

    def has_due_windows(self, watermark: float) -> bool:
        """Return True when at least one open window ends at or before ``watermark``."""
        heap = self._deadline_heap
        return bool(heap) and heap[0][0] <= watermark

    def pop_next_due_window(self, watermark: float) -> Optional[WindowKey]:
        """Pop and return the earliest-ending open window due at ``watermark``.

        Due windows come back one at a time in end-time order (the order
        they must close in), so an error while processing one window
        leaves the deadlines of the remaining due windows intact for the
        next call.  This replaces the per-event scan-and-sort over all
        open windows: when nothing is due the cost is one heap peek.
        """
        heap = self._deadline_heap
        while heap and heap[0][0] <= watermark:
            end, index, start = heapq.heappop(heap)
            window = WindowKey(index=index, start=start, end=end)
            # Skip stale deadlines for windows already closed directly via
            # close_window (the heap is not updated on that path).
            if window in self._pending:
                return window
        return None

    def close_window(self, window: WindowKey) -> List[WindowState]:
        """Compute and record the states of all groups of a closing window."""
        groups = self._pending.pop(window, {})
        states: List[WindowState] = []
        for group_key, matches in groups.items():
            state = self._compute_state(window, group_key, matches)
            history = self._histories.setdefault(
                group_key, StateHistory(self._state.history))
            history.push(state)
            states.append(state)
        return states

    def _compute_state(self, window: WindowKey, group_key: Any,
                       matches: List[PatternMatch]) -> WindowState:
        if self._compiled_fields is not None:
            fields = self._compiled_fields(matches)
            return WindowState(
                group_key=group_key,
                window=window,
                fields=fields,
                representative=matches[-1] if matches else None,
                match_count=len(matches),
            )
        from repro.core.engine.context import AggregationContext

        context = AggregationContext(matches)
        evaluator = ExpressionEvaluator(context)
        fields = {}
        for definition in self._state.definitions:
            fields[definition.name] = evaluator.evaluate(definition.expr)
        return WindowState(
            group_key=group_key,
            window=window,
            fields=fields,
            representative=matches[-1] if matches else None,
            match_count=len(matches),
        )

    # -- history access ---------------------------------------------------------

    def history_for(self, group_key: Any) -> StateHistory:
        """Return (creating if necessary) the history of one group."""
        return self._histories.setdefault(
            group_key, StateHistory(self._state.history))

    @property
    def group_count(self) -> int:
        """Return the number of groups with recorded history."""
        return len(self._histories)

    @property
    def state_name(self) -> str:
        """Return the state block's declared name (e.g. ``ss``)."""
        return self._state.name
