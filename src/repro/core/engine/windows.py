"""Sliding-window assignment for stateful queries.

SAQL's stateful constructs (state blocks, invariants, clustering) are
computed *per sliding window* over the stream (Section II-B.2 of the
paper).  The :class:`WindowAssigner` turns a window specification
(``#time(10 min)`` / ``#count(1000)``) into window identifiers:

* **time windows** are aligned to the epoch: window *i* covers
  ``[i * hop, i * hop + length)``; with the default hop (= length) this is
  the tumbling behaviour the paper's queries use;
* **count windows** batch every ``length`` matched events.

The engine closes a window once an event arrives whose timestamp lies
beyond that window's end (watermark = event time), then computes its state.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from repro.core.language import ast


@dataclass(frozen=True)
class WindowKey:
    """Identifies one window instance."""

    index: int
    start: float
    end: float

    def contains(self, timestamp: float) -> bool:
        """Return True when the timestamp falls inside this window."""
        return self.start <= timestamp < self.end


class WindowAssigner:
    """Maps event timestamps (or event ordinals) to window instances."""

    def __init__(self, spec: Optional[ast.WindowSpec]):
        self._spec = spec
        self._count_seen = 0
        self._is_count = spec is not None and spec.kind == "count"
        # Events cluster in time, so consecutive assignments usually hit
        # the same window; cache the last key — and the one-element result
        # tuple wrapping it — so the per-event fast path neither rebuilds
        # the key nor allocates a fresh container.  The cached result is
        # returned to *every* caller that hits the same window, so it must
        # be immutable: a list here once let a caller that mutated (or
        # retained and extended) its result corrupt every subsequent
        # assignment into that window.
        self._last_window: Optional[WindowKey] = None
        self._last_result: Tuple[WindowKey, ...] = ()

    @property
    def spec(self) -> Optional[ast.WindowSpec]:
        """Return the window specification (None for rule-based queries)."""
        return self._spec

    @property
    def is_windowed(self) -> bool:
        """Return True when the query computes per-window state."""
        return self._spec is not None

    @property
    def count_seen(self) -> int:
        """Return how many matched events have been assigned so far.

        Only advances for count-based windows, where it doubles as the
        stream position that drives window closing.
        """
        return self._count_seen

    def watermark(self, event_timestamp: float) -> float:
        """Return the window-closing watermark after an event at ``timestamp``.

        Time-based windows close on event time; count-based windows close
        on the match ordinal this assigner tracks internally.
        """
        if self._is_count:
            return float(self._count_seen)
        return event_timestamp

    def assign(self, timestamp: float) -> Tuple[WindowKey, ...]:
        """Return the windows an event at ``timestamp`` belongs to.

        For count-based windows the internal ordinal counter advances on
        each call, so the caller must invoke :meth:`assign` exactly once per
        matched event.

        The result is an immutable tuple: the tumbling fast path returns a
        *cached* container shared across calls that hit the same window, so
        a mutable result would let one caller corrupt every later
        assignment into that window.
        """
        spec = self._spec
        if spec is None:
            return ()
        if spec.kind == "count":
            index = self._count_seen // int(spec.length)
            self._count_seen += 1
            start = index * spec.length
            return (WindowKey(index=index, start=start,
                              end=start + spec.length),)
        return self._assign_time(timestamp)

    def _assign_time(self, timestamp: float) -> Tuple[WindowKey, ...]:
        spec = self._spec
        assert spec is not None
        hop = spec.effective_hop
        length = spec.length
        if hop <= 0:
            raise ValueError("window hop must be positive")
        # The newest window whose start is <= timestamp.  Guard against the
        # division rounding up to the next hop boundary.
        newest = int(math.floor(timestamp / hop))
        while newest > 0 and newest * hop > timestamp:
            newest -= 1
        if hop >= length:
            # Tumbling (or gapped) windows: at most one window contains the
            # timestamp, and consecutive events usually share it.
            start = newest * hop
            if start + length <= timestamp:
                return ()
            cached = self._last_window
            if cached is not None and cached.index == newest:
                return self._last_result
            key = WindowKey(index=newest, start=start, end=start + length)
            self._last_window = key
            self._last_result = (key,)
            return self._last_result
        keys: List[WindowKey] = []
        index = newest
        while index >= 0:
            start = index * hop
            if start + length <= timestamp:
                break
            keys.append(WindowKey(index=index, start=start,
                                  end=start + length))
            index -= 1
        keys.reverse()
        return tuple(keys)

    def window_end_for(self, key: WindowKey) -> float:
        """Return the closing time of a window (same as ``key.end``)."""
        return key.end

    # -- snapshots -----------------------------------------------------------

    def export_state(self):
        """Snapshot the assigner's durable state (the count ordinal).

        The cached last window/result pair is a pure optimization and is
        rebuilt lazily after a restore.
        """
        return {"count_seen": self._count_seen}

    def restore_state(self, state) -> None:
        """Restore :meth:`export_state` output into this assigner."""
        self._count_seen = int(state["count_seen"])
        self._last_window = None
        self._last_result = ()

    def closed_before(self, open_windows: Iterable[WindowKey],
                      watermark: float) -> List[WindowKey]:
        """Return the given windows whose end lies at or before ``watermark``."""
        return sorted((key for key in open_windows if key.end <= watermark),
                      key=lambda key: key.end)
