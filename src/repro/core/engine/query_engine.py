"""The per-query executor.

:class:`QueryEngine` ties together the engine stages for one SAQL query:
multievent matching, sliding-window state maintenance, invariant training,
clustering, alert evaluation and return projection.  It supports both batch
execution over a finite stream (:meth:`execute`) and incremental, per-event
execution (:meth:`process_event` / :meth:`finish`) as used by the CLI and
the concurrent query scheduler.
"""

from __future__ import annotations

import itertools
from time import perf_counter
from typing import (Any, Callable, Dict, Iterable, List, Optional, Sequence,
                    Tuple, Union)

from repro.core.compile.expressions import CompiledExpr, compile_scalar
from repro.core.engine.alerts import Alert, AlertSink
from repro.core.engine.clustering import ClusterEvaluator
from repro.core.engine.context import ClusterView, GroupContext
from repro.core.engine.error_reporter import ErrorReporter
from repro.core.engine.invariant import InvariantMaintainer
from repro.core.engine.matching import PatternMatch
from repro.core.engine.multievent_matcher import MultieventMatcher, SequenceMatch
from repro.core.engine.state import StateMaintainer, WindowState
from repro.core.engine.windows import WindowAssigner, WindowKey
from repro.core.errors import SAQLError, SAQLExecutionError
from repro.core.expr import values
from repro.core.expr.evaluator import ExpressionEvaluator
from repro.core.language import ast, format_query, parse_query
from repro.core.language.formatter import format_expression
from repro.events.entities import Entity
from repro.events.event import Event

_ENGINE_COUNTER = itertools.count(1)


class QueryEngine:
    """Executes one SAQL query over a stream of system events."""

    def __init__(self, query: Union[str, ast.Query],
                 name: Optional[str] = None,
                 sink: Optional[AlertSink] = None,
                 error_reporter: Optional[ErrorReporter] = None,
                 sequence_horizon: Optional[float] = None,
                 compiled: bool = True,
                 incremental: Optional[bool] = None,
                 close_timer: Optional[Callable[[float], None]] = None):
        if isinstance(query, str):
            query = parse_query(query)
        self._query = query
        self.name = name or query.name or f"query-{next(_ENGINE_COUNTER)}"
        self._sink = sink
        self._error_reporter = error_reporter
        self._compiled = compiled

        # The query is lowered to closures once, here; the per-event path
        # below only runs pre-built artifacts (see repro.core.compile).
        # With compiled=False every stage falls back to the AST-walking
        # interpreter, kept as the reference for equivalence testing.
        self._compiled_alert: Optional[CompiledExpr] = None
        self._compiled_returns: Optional[
            Tuple[Tuple[str, CompiledExpr], ...]] = None
        if compiled:
            if query.alert is not None:
                self._compiled_alert = compile_scalar(query.alert.condition)
            if query.returns is not None:
                self._compiled_returns = tuple(
                    (item.alias or format_expression(item.expr),
                     compile_scalar(item.expr))
                    for item in query.returns.items)

        self._matcher = MultieventMatcher(query, horizon=sequence_horizon,
                                          compiled=compiled)
        self._window_assigner = WindowAssigner(query.window)
        # ``incremental=None`` auto-selects: state blocks that lower to an
        # accumulator plan run incrementally (streaming accumulators, pane
        # sharing, match-buffer elision); the rest — and compiled=False —
        # use the buffered-recompute oracle.
        self._state_maintainer: Optional[StateMaintainer] = (
            StateMaintainer(query, compiled=compiled, incremental=incremental)
            if query.state is not None else None)
        self._invariant: Optional[InvariantMaintainer] = None
        if query.invariant is not None and query.state is not None:
            self._invariant = InvariantMaintainer(query.invariant,
                                                  query.state.name,
                                                  compiled=compiled)
        self._cluster: Optional[ClusterEvaluator] = None
        if query.cluster is not None and query.state is not None:
            self._cluster = ClusterEvaluator(query.cluster, query.state.name)

        # Optional stage-timing hook (seconds spent closing windows);
        # None keeps the batch tail clock-free.  Only the batch paths
        # time closes — the per-event path stays untouched.
        self._close_timer = close_timer

        self._seen_distinct: set = set()
        self.events_processed = 0
        self.alerts_emitted = 0
        self._collected: List[Alert] = []

    # -- public API ----------------------------------------------------------

    @property
    def query(self) -> ast.Query:
        """Return the (parsed, analyzed) query this engine executes."""
        return self._query

    @property
    def matcher(self) -> MultieventMatcher:
        """Return the multievent matcher (exposed for the scheduler)."""
        return self._matcher

    @property
    def alerts(self) -> List[Alert]:
        """Return all alerts emitted so far."""
        return list(self._collected)

    @property
    def state_buffered_matches(self) -> int:
        """Matches currently retained for window state (0 for rule queries).

        Under buffered aggregation this counts every stored copy (an
        overlapping window stores each match once per containing window);
        under incremental aggregation it counts the single representative
        match kept per open (bucket, group).
        """
        if self._state_maintainer is None:
            return 0
        return self._state_maintainer.buffered_matches

    @property
    def state_peak_buffered_matches(self) -> int:
        """Peak of :attr:`state_buffered_matches` over the run."""
        if self._state_maintainer is None:
            return 0
        return self._state_maintainer.peak_buffered_matches

    def open_window_deadline(self) -> Optional[float]:
        """Return the earliest end time of this engine's open windows.

        None for rule-based queries (no window state) and for stateful
        queries with nothing open.  The sharded runtime's drain-and-handoff
        protocol polls this through the owning scheduler: migrating an
        agentid is safe once every window that could hold its matches —
        all of which end at or before the migration's cut time — has
        closed.
        """
        if self._state_maintainer is None:
            return None
        return self._state_maintainer.earliest_open_deadline()

    def execute(self, stream: Iterable[Event]) -> List[Alert]:
        """Run the query over a finite stream and return all alerts."""
        for event in stream:
            self.process_event(event)
        self.finish()
        return self.alerts

    def process_event(self, event: Event) -> List[Alert]:
        """Feed one event; return the alerts it triggered (may be empty)."""
        matches = self._matcher.pattern_matcher.match_event(event)
        return self.process_matches(event, matches)

    def process_events(self, events: Sequence[Event]) -> List[Alert]:
        """Feed a timestamp-ordered batch of events; return the new alerts.

        Equivalent to calling :meth:`process_event` per event, but routed
        through :meth:`process_match_batch` so per-event dispatch overhead
        is amortized across the batch.
        """
        matcher = self._matcher.pattern_matcher
        return self.process_match_batch(
            [(event, matcher.match_event(event)) for event in events])

    def process_match_batch(
            self, pairs: Sequence[Tuple[Event, Sequence[PatternMatch]]]
    ) -> List[Alert]:
        """Feed a batch of events with externally computed pattern matches.

        This is the batch counterpart of :meth:`process_matches` (and what
        the concurrent scheduler's batch ingestion path calls): matches are
        folded in per event, but the per-event engine call chain collapses
        to one call per batch.  For stateful queries the window-closing
        watermark advances once, at the batch tail — safe because the
        watermark is monotone in event time and matches never join windows
        that are already due, so the closed windows, their contents and
        their closing order are identical to per-event feeding; only the
        point within the batch at which close-alerts surface moves to the
        batch tail.  For rule queries, events without matches are skipped
        entirely: they can neither extend nor complete a sequence, and
        partial-sequence expiry is cutoff-monotone, so the next match
        prunes the same partials the skipped calls would have.
        """
        if self._state_maintainer is None:
            alerts: List[Alert] = []
            for event, matches in pairs:
                self.events_processed += 1
                if not matches:
                    continue
                try:
                    alerts.extend(self._process_rule(event, matches))
                except SAQLError as error:
                    if self._error_reporter is None:
                        raise
                    self._error_reporter.report(self.name, error,
                                                timestamp=event.timestamp)
            return alerts
        last_event: Optional[Event] = None
        for event, matches in pairs:
            self.events_processed += 1
            if matches:
                try:
                    self._accumulate_matches(matches)
                except SAQLError as error:
                    if self._error_reporter is None:
                        raise
                    self._error_reporter.report(self.name, error,
                                                timestamp=event.timestamp)
            last_event = event
        if last_event is None:
            return []
        try:
            watermark = self._current_watermark(last_event)
            if self._close_timer is None:
                return self._close_windows(watermark)
            started = perf_counter()
            alerts = self._close_windows(watermark)
            self._close_timer(perf_counter() - started)
            return alerts
        except SAQLError as error:
            if self._error_reporter is None:
                raise
            self._error_reporter.report(self.name, error,
                                        timestamp=last_event.timestamp)
            return []

    def process_matches(self, event: Event,
                        matches: Sequence[PatternMatch]) -> List[Alert]:
        """Feed one event whose pattern matches were computed externally.

        The concurrent query scheduler uses this entry point so dependent
        queries can reuse the pattern matches of their master query.
        """
        self.events_processed += 1
        try:
            if self._state_maintainer is not None:
                return self._process_stateful(event, matches)
            return self._process_rule(event, matches)
        except SAQLError as error:
            if self._error_reporter is None:
                raise
            self._error_reporter.report(self.name, error,
                                        timestamp=event.timestamp)
            return []

    def finish(self) -> List[Alert]:
        """Flush all still-open windows (end of stream) and return new alerts."""
        if self._state_maintainer is None:
            return []
        try:
            if self._close_timer is None:
                return self._close_windows(watermark=float("inf"))
            started = perf_counter()
            alerts = self._close_windows(watermark=float("inf"))
            self._close_timer(perf_counter() - started)
            return alerts
        except SAQLError as error:
            if self._error_reporter is None:
                raise
            self._error_reporter.report(self.name, error)
            return []

    # -- snapshots / state transfer --------------------------------------------

    def export_state(self) -> Dict[str, Any]:
        """Snapshot this engine's live state in the versioned wire form.

        Covers the window assigner's count ordinal, the multievent
        matcher's partial sequences, the state maintainer's buckets,
        panes and histories, invariant training, the ``distinct``
        seen-set, the counters, and the alert ledger (every alert emitted
        so far) for exactly-once re-emission after recovery.
        """
        from repro.core.snapshot.codecs import encode_alert, encode_value
        data: Dict[str, Any] = {
            "name": self.name,
            "events_processed": self.events_processed,
            "alerts_emitted": self.alerts_emitted,
            "assigner": self._window_assigner.export_state(),
            "matcher": self._matcher.export_state(),
            "seen_distinct": [encode_value(entry)
                              for entry in self._seen_distinct],
            "alerts": [encode_alert(alert) for alert in self._collected],
        }
        if self._state_maintainer is not None:
            data["state"] = self._state_maintainer.export_state()
        if self._invariant is not None:
            data["invariant"] = self._invariant.export_state()
        return data

    def restore_state(self, data: Dict[str, Any]) -> None:
        """Restore :meth:`export_state` output into this (fresh) engine.

        The engine must have been built for the same query under the same
        execution configuration.  The restored alert ledger repopulates
        :attr:`alerts`, so a recovered run's collected output is the
        uninterrupted run's alerts — already-emitted alerts are not
        re-derived (the resume cursor skips their events) and not lost.
        """
        from repro.core.snapshot.codecs import decode_alert, decode_value
        if data["name"] != self.name:
            raise ValueError(
                f"snapshot belongs to query {data['name']!r}, not "
                f"{self.name!r}; register the same queries before restoring")
        self.events_processed = int(data["events_processed"])
        self.alerts_emitted = int(data["alerts_emitted"])
        self._window_assigner.restore_state(data["assigner"])
        self._matcher.restore_state(data["matcher"])
        self._seen_distinct = {decode_value(entry)
                               for entry in data["seen_distinct"]}
        self._collected = [decode_alert(alert) for alert in data["alerts"]]
        if self._state_maintainer is not None:
            self._state_maintainer.restore_state(data["state"])
        if self._invariant is not None:
            self._invariant.restore_state(data["invariant"])

    def extract_agent_state(self, agentid_key: str) -> Dict[str, Any]:
        """Remove and return one host's slice of this engine's state.

        ``agentid_key`` is the casefolded agentid (the sharded router's
        migration key).  The ``distinct`` seen-set is *copied*, not
        removed: entries of other hosts can never collide with alerts the
        importing shard emits (group keys are host-local on stealable
        lanes), and the victim's entries must survive on both sides in
        case of a later reverse migration.
        """
        from repro.core.snapshot.codecs import encode_value

        def owns(event: Event) -> bool:
            return event.agentid.casefold() == agentid_key

        payload: Dict[str, Any] = {
            "matcher": self._matcher.extract_partials(owns),
        }
        if self._state_maintainer is not None:
            payload["state"] = self._state_maintainer.extract_agent_state(
                lambda match: owns(match.event))
        if self._query.returns is not None and self._query.returns.distinct:
            payload["distinct"] = [encode_value(entry)
                                   for entry in self._seen_distinct]
        return payload

    def import_agent_state(self, payload: Dict[str, Any]) -> None:
        """Merge a donor engine's :meth:`extract_agent_state` slice."""
        from repro.core.snapshot.codecs import decode_value
        self._matcher.absorb_partials(payload["matcher"])
        if "state" in payload and self._state_maintainer is not None:
            self._state_maintainer.merge_agent_state(payload["state"])
        if "distinct" in payload:
            self._seen_distinct.update(decode_value(entry)
                                       for entry in payload["distinct"])

    # -- rule-based path -------------------------------------------------------

    def _process_rule(self, event: Event,
                      matches: Sequence[PatternMatch]) -> List[Alert]:
        alerts: List[Alert] = []
        sequences = self._matcher.process_matches(event, matches)
        for sequence in sequences:
            alert = self._emit_rule_alert(sequence)
            if alert is not None:
                alerts.append(alert)
        return alerts

    def _emit_rule_alert(self, sequence: SequenceMatch) -> Optional[Alert]:
        context = GroupContext(bindings=sequence.bindings,
                               events=sequence.events)
        if not self._alert_condition_holds(context):
            return None
        last_event = max(sequence.matches, key=lambda m: m.timestamp).event
        return self._emit_alert(
            context=context,
            timestamp=sequence.timestamp,
            group_key=None,
            window=None,
            agentid=last_event.agentid,
        )

    # -- stateful path -----------------------------------------------------------

    def _process_stateful(self, event: Event,
                          matches: Sequence[PatternMatch]) -> List[Alert]:
        assert self._state_maintainer is not None
        self._accumulate_matches(matches)
        watermark = self._current_watermark(event)
        return self._close_windows(watermark)

    def _accumulate_matches(self, matches: Sequence[PatternMatch]) -> None:
        maintainer = self._state_maintainer
        assert maintainer is not None
        if maintainer.shares_panes:
            # Overlapping sliding windows: one pane update per match
            # instead of one bucket append per containing window.
            add_sliding = maintainer.add_match_sliding
            for match in matches:
                add_sliding(match)
            return
        assign = self._window_assigner.assign
        add = maintainer.add_match
        for match in matches:
            for window in assign(match.timestamp):
                add(window, match)

    def _current_watermark(self, event: Event) -> float:
        return self._window_assigner.watermark(event.timestamp)

    def _close_windows(self, watermark: float) -> List[Alert]:
        assert self._state_maintainer is not None
        if not self._state_maintainer.has_due_windows(watermark):
            return []
        alerts: List[Alert] = []
        # Pop one window at a time: if processing a window raises, the
        # later due windows keep their deadlines and close on the next
        # watermark advance, as they did under the scan-based closing.
        while True:
            window = self._state_maintainer.pop_next_due_window(watermark)
            if window is None:
                break
            alerts.extend(self._process_closed_window(window))
        return alerts

    def _process_closed_window(self, window: WindowKey) -> List[Alert]:
        assert self._state_maintainer is not None
        states = self._state_maintainer.close_window(window)
        if not states:
            return []
        histories = {
            state.group_key: self._state_maintainer.history_for(state.group_key)
            for state in states
        }
        cluster_result = None
        if self._cluster is not None:
            cluster_result = self._cluster.evaluate_window(states, histories)

        alerts: List[Alert] = []
        for state in states:
            alert = self._evaluate_group(window, state, histories,
                                         cluster_result)
            if alert is not None:
                alerts.append(alert)
        return alerts

    def _evaluate_group(self, window: WindowKey, state: WindowState,
                        histories: Dict[Any, Any],
                        cluster_result) -> Optional[Alert]:
        assert self._state_maintainer is not None
        history = histories[state.group_key]

        in_training = False
        invariant_values: Dict[str, Any] = {}
        if self._invariant is not None:
            invariant_values = self._invariant.values_for(state.group_key)
            in_training = self._invariant.is_training(state.group_key)

        bindings: Dict[str, Entity] = {}
        events: Dict[str, Event] = {}
        agentid = ""
        if state.representative is not None:
            bindings = dict(state.representative.bindings)
            events = {state.representative.alias: state.representative.event}
            agentid = state.representative.event.agentid

        context = GroupContext(
            state_name=self._state_maintainer.state_name,
            history=history,
            invariant_values=invariant_values,
            cluster_view=ClusterView(cluster_result, state.group_key),
            bindings=bindings,
            events=events,
        )

        fire = True
        if in_training:
            fire = False
        else:
            fire = self._alert_condition_holds(context)

        alert: Optional[Alert] = None
        if fire:
            alert = self._emit_alert(
                context=context,
                timestamp=window.end,
                group_key=state.group_key,
                window=window,
                agentid=agentid,
            )

        # The invariant absorbs this window only after detection, so a
        # deviation is reported before it becomes part of the invariant.
        if self._invariant is not None:
            self._invariant.observe_window(state.group_key, history)
        return alert

    # -- alert construction -------------------------------------------------------

    def _alert_condition_holds(self, context: GroupContext) -> bool:
        if self._query.alert is None:
            return True
        if self._compiled_alert is not None:
            return values.is_truthy(self._compiled_alert(context))
        evaluator = ExpressionEvaluator(context)
        return evaluator.evaluate_truthy(self._query.alert.condition)

    def _emit_alert(self, context: GroupContext, timestamp: float,
                    group_key: Any, window: Optional[WindowKey],
                    agentid: str) -> Optional[Alert]:
        data = self._project_returns(context)
        if self._query.returns is not None and self._query.returns.distinct:
            key = (group_key, data)
            if key in self._seen_distinct:
                return None
            self._seen_distinct.add(key)
        alert = Alert(
            query_name=self.name,
            timestamp=timestamp,
            data=data,
            model_kind=self._query.model_kind,
            group_key=group_key,
            window_start=window.start if window is not None else None,
            window_end=window.end if window is not None else None,
            agentid=agentid,
        )
        self.alerts_emitted += 1
        self._collected.append(alert)
        if self._sink is not None:
            # A broken sink must not take the stream down: the alert is
            # already in the ledger (checkpointed, re-deliverable), so a
            # raising sink is reported against this query — feeding the
            # quarantine circuit-breaker's counters — and the run goes
            # on.  Without a reporter there is no error path to route
            # through, so the failure propagates as before.
            try:
                self._sink.emit(alert)
            except Exception as error:
                if self._error_reporter is None:
                    raise
                self._error_reporter.report(self.name, error,
                                            timestamp=timestamp, fatal=True)
        return alert

    def _project_returns(self, context: GroupContext
                         ) -> Tuple[Tuple[str, Any], ...]:
        returns = self._query.returns
        if returns is None:
            return ()
        if self._compiled_returns is not None:
            return tuple((label, _projectable(item_fn(context)))
                         for label, item_fn in self._compiled_returns)
        evaluator = ExpressionEvaluator(context)
        projected: List[Tuple[str, Any]] = []
        for item in returns.items:
            label = item.alias or format_expression(item.expr)
            value = evaluator.evaluate(item.expr)
            projected.append((label, _projectable(value)))
        return tuple(projected)


def _projectable(value: Any) -> Any:
    """Convert engine runtime values to alert-friendly plain values.

    Entities project to their default attribute (the paper's context-aware
    shortcut: ``p1`` returns ``p1.exe_name``); events project to their id;
    sets become sorted tuples so alerts are hashable and stable.
    """
    if isinstance(value, Entity):
        return value.default_value()
    if isinstance(value, Event):
        return value.event_id
    if isinstance(value, (set, frozenset)):
        return tuple(sorted(str(item) for item in value))
    if isinstance(value, float) and value.is_integer():
        # Aggregations over integral byte counts produce floats like
        # 500000.0; normalize them so alert payloads are stable regardless
        # of whether a value went through float arithmetic.
        return int(value)
    return value
