"""The SAQL anomaly query engine.

The engine mirrors the architecture in Fig. 1 of the paper:

* :mod:`repro.core.engine.matching` / :mod:`repro.core.engine.multievent_matcher`
  — the *multievent matcher*, which matches stream events against the
  query's event patterns (attribute constraints, operation alternation,
  temporal order, shared entity variables);
* :mod:`repro.core.engine.windows`, :mod:`repro.core.engine.state` —
  the *state maintainer*: sliding-window assignment and per-group state
  history;
* :mod:`repro.core.engine.invariant` — invariant training and checking;
* :mod:`repro.core.engine.clustering` — the cluster statement evaluator;
* :mod:`repro.core.engine.query_engine` — the per-query executor tying the
  pieces together and emitting alerts;
* :mod:`repro.core.engine.error_reporter` — the error reporter.

Concurrent execution of many queries with the master-dependent-query scheme
lives in :mod:`repro.core.scheduler`.
"""

from repro.core.engine.alerts import Alert, AlertSink, CollectingSink
from repro.core.engine.error_reporter import ErrorRecord, ErrorReporter
from repro.core.engine.matching import PatternMatch, PatternMatcher
from repro.core.engine.multievent_matcher import MultieventMatcher
from repro.core.engine.query_engine import QueryEngine
from repro.core.engine.state import StateMaintainer, WindowState
from repro.core.engine.windows import WindowAssigner

__all__ = [
    "Alert",
    "AlertSink",
    "CollectingSink",
    "ErrorRecord",
    "ErrorReporter",
    "MultieventMatcher",
    "PatternMatch",
    "PatternMatcher",
    "QueryEngine",
    "StateMaintainer",
    "WindowAssigner",
    "WindowState",
]
