"""The cluster-statement evaluator for outlier-based anomaly models.

When a window closes, the engine gathers one *comparison point* per group
(the values named in the cluster statement's ``points=all(...)``), runs the
declared clustering method with the declared distance function, and makes
the per-group outcome available to the alert condition as
``cluster.outlier`` / ``cluster.label`` (Query 4 of the paper).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.cluster.dbscan import DBSCAN, ClusterResult
from repro.core.cluster.distance import get_distance
from repro.core.cluster.kmeans import KMeans
from repro.core.engine.context import GroupContext
from repro.core.engine.state import StateHistory, WindowState
from repro.core.errors import SAQLExecutionError
from repro.core.expr.evaluator import ExpressionEvaluator
from repro.core.expr.values import to_number
from repro.core.language import ast

#: Default DBSCAN parameters when the method string omits them.
DEFAULT_DBSCAN_EPS = 1000.0
DEFAULT_DBSCAN_MIN_PTS = 3


class ClusterEvaluator:
    """Builds per-group comparison points and runs the declared clustering."""

    def __init__(self, spec: ast.ClusterSpec, state_name: str):
        self._spec = spec
        self._state_name = state_name
        self._distance = get_distance(spec.distance)
        self._point_exprs = self._extract_point_expressions(spec.points)

    @staticmethod
    def _extract_point_expressions(points: ast.Expression
                                   ) -> Tuple[ast.Expression, ...]:
        """Unwrap ``all(expr, ...)`` into the per-group point expressions."""
        if isinstance(points, ast.FuncCall) and points.name.lower() == "all":
            if not points.args:
                raise SAQLExecutionError("all() requires at least one argument")
            return tuple(points.args)
        return (points,)

    def point_for(self, group_key: Any, history: StateHistory,
                  state: WindowState) -> Optional[List[float]]:
        """Evaluate one group's comparison point for the closing window."""
        context = GroupContext(state_name=self._state_name, history=history)
        evaluator = ExpressionEvaluator(context)
        vector: List[float] = []
        for expr in self._point_exprs:
            value = evaluator.evaluate(expr)
            if value is None:
                return None
            vector.append(to_number(value))
        return vector

    def cluster(self, points: Sequence[Sequence[float]],
                keys: Sequence[Any]) -> ClusterResult:
        """Run the declared clustering method over the window's points."""
        method = self._spec.method.upper()
        if method == "DBSCAN":
            eps = (self._spec.method_args[0]
                   if len(self._spec.method_args) >= 1 else DEFAULT_DBSCAN_EPS)
            min_pts = (int(self._spec.method_args[1])
                       if len(self._spec.method_args) >= 2
                       else DEFAULT_DBSCAN_MIN_PTS)
            algorithm = DBSCAN(eps=eps, min_pts=min_pts,
                               distance=self._distance)
            return algorithm.fit(points, keys=keys)
        if method == "KMEANS":
            n_clusters = (int(self._spec.method_args[0])
                          if self._spec.method_args else 2)
            algorithm = KMeans(n_clusters=n_clusters, distance=self._distance)
            return algorithm.fit(points, keys=keys)
        raise SAQLExecutionError(
            f"unsupported clustering method {self._spec.method!r}")

    def evaluate_window(self, window_states: Sequence[WindowState],
                        histories: Dict[Any, StateHistory]
                        ) -> Optional[ClusterResult]:
        """Cluster all groups of one closed window.

        Returns None when no group produced a usable comparison point.
        """
        points: List[List[float]] = []
        keys: List[Any] = []
        for state in window_states:
            history = histories.get(state.group_key)
            if history is None:
                continue
            point = self.point_for(state.group_key, history, state)
            if point is None:
                continue
            points.append(point)
            keys.append(state.group_key)
        if not points:
            return None
        return self.cluster(points, keys)
