"""Single event-pattern matching.

The first stage of the multievent matcher: check one stream event against
one event pattern (``proc p1["%cmd.exe"] start proc p2["%osql.exe"]``),
enforcing the query's global constraints, the operation alternation and
both entities' attribute constraints.  A successful match yields a
:class:`PatternMatch` carrying the entity-variable bindings that later
stages (temporal sequencing, grouping, projection) consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.compile.predicates import CompiledPatternSet
from repro.core.expr.values import compare_values, like_match
from repro.core.language import ast
from repro.events.entities import Entity
from repro.events.event import Event


@dataclass(frozen=True)
class PatternMatch:
    """One event matched against one pattern, with variable bindings."""

    alias: str
    event: Event
    bindings: Dict[str, Entity] = field(default_factory=dict)

    @property
    def timestamp(self) -> float:
        """Return the matched event's timestamp."""
        return self.event.timestamp


def check_constraint(entity: Entity,
                     constraint: ast.AttributeConstraint) -> bool:
    """Check one attribute constraint against an entity."""
    if constraint.attr is None:
        value = entity.get_attr(entity.default_attribute)
    else:
        value = entity.get_attr(constraint.attr)
    return _apply_operator(constraint.op, value, constraint.value)


def check_global_constraint(event: Event,
                            constraint: ast.GlobalConstraint) -> bool:
    """Check one query-wide constraint (e.g. ``agentid = ...``) on an event."""
    value = event.get_attr(constraint.attr)
    if value is None:
        # Global constraints may also target subject attributes (e.g. a
        # query pinned to events of one executable).
        value = event.subject.get_attr(constraint.attr)
    return _apply_operator(constraint.op, value, constraint.value)


def _apply_operator(op: str, value: Any, expected: Any) -> bool:
    if op == "like":
        return like_match(value, str(expected))
    return compare_values(op, value, expected)


def entity_matches(entity: Entity, declaration: ast.EntityDeclaration) -> bool:
    """Check that an entity has the declared type and satisfies constraints."""
    if entity.entity_type.value != declaration.entity_type:
        return False
    return all(check_constraint(entity, constraint)
               for constraint in declaration.constraints)


class PatternMatcher:
    """Matches stream events against the event patterns of one query.

    By default the patterns are compiled once into closures (see
    :mod:`repro.core.compile.predicates`): the per-event path then runs a
    fused global-constraint predicate and only the patterns indexed under
    the event's operation.  Pass ``compiled=False`` to force the original
    AST-walking interpreter (the slow-path reference used for equivalence
    testing).
    """

    def __init__(self, query: ast.Query, compiled: bool = True):
        self._query = query
        self._patterns: Tuple[ast.EventPatternDeclaration, ...] = tuple(
            query.patterns)
        self._global_constraints = tuple(query.global_constraints)
        self._compiled: Optional[CompiledPatternSet] = (
            CompiledPatternSet(query) if compiled else None)
        #: Matching statistics for benchmarks (events seen / matched).
        self.events_seen = 0
        self.events_matched = 0

    @property
    def patterns(self) -> Tuple[ast.EventPatternDeclaration, ...]:
        """Return the patterns this matcher evaluates."""
        return self._patterns

    @property
    def compiled_patterns(self) -> Optional[CompiledPatternSet]:
        """Return the compiled pattern set (None in interpreter mode)."""
        return self._compiled

    def passes_global_constraints(self, event: Event) -> bool:
        """Check the query-wide constraints for one event."""
        if self._compiled is not None:
            return self._compiled.passes_global_constraints(event)
        return all(check_global_constraint(event, constraint)
                   for constraint in self._global_constraints)

    def match_event(self, event: Event) -> List[PatternMatch]:
        """Return the pattern matches produced by one stream event.

        An event can match several patterns of the same query (e.g. the two
        network patterns of a query using both ``read`` and ``write``), so a
        list is returned.  The global constraints are checked once.
        """
        self.events_seen += 1
        if not self.passes_global_constraints(event):
            return []
        if self._compiled is not None:
            matches = self._compiled.match_event(event)
        else:
            matches = []
            for pattern in self._patterns:
                match = self.match_pattern(event, pattern)
                if match is not None:
                    matches.append(match)
        if matches:
            self.events_matched += 1
        return matches

    def match_pattern(self, event: Event,
                      pattern: ast.EventPatternDeclaration
                      ) -> Optional[PatternMatch]:
        """Match one event against one pattern (no global constraints)."""
        if self._compiled is not None:
            compiled = self._compiled.compiled_for(pattern)
            if compiled is not None:
                return compiled.match(event)
        if event.operation.value not in pattern.operations:
            return None
        if not entity_matches(event.subject, pattern.subject):
            return None
        if not entity_matches(event.obj, pattern.object):
            return None
        bindings = {
            pattern.subject.variable: event.subject,
            pattern.object.variable: event.obj,
        }
        return PatternMatch(alias=pattern.alias, event=event,
                            bindings=bindings)

    @property
    def selectivity(self) -> float:
        """Return the fraction of seen events that matched any pattern."""
        if self.events_seen == 0:
            return 0.0
        return self.events_matched / self.events_seen
