"""The multievent matcher: temporal sequences over pattern matches.

Rule-based queries (Query 1 of the paper) declare several event patterns,
an optional temporal order (``with evt1 -> evt2 -> evt3``), and implicit
attribute relationships through shared entity variables (the same ``f1``
appearing in two patterns forces both matched events to involve the same
file).  The multievent matcher maintains *partial sequences* of pattern
matches and emits a :class:`SequenceMatch` once every pattern of the query
has been matched consistently.

Partial sequences expire after ``horizon`` seconds so that memory stays
bounded on an unbounded stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.engine.matching import PatternMatch, PatternMatcher
from repro.core.language import ast
from repro.events.entities import Entity
from repro.events.event import Event

#: Default partial-sequence lifetime (seconds) when the query has no window.
DEFAULT_HORIZON = 3600.0


@dataclass(frozen=True)
class SequenceMatch:
    """A complete multievent match: one event per pattern alias."""

    matches: Tuple[PatternMatch, ...]

    @property
    def bindings(self) -> Dict[str, Entity]:
        """Return the merged entity bindings of the sequence."""
        merged: Dict[str, Entity] = {}
        for match in self.matches:
            merged.update(match.bindings)
        return merged

    @property
    def events(self) -> Dict[str, Event]:
        """Return the matched event for each alias."""
        return {match.alias: match.event for match in self.matches}

    @property
    def timestamp(self) -> float:
        """Return the timestamp of the last event in the sequence."""
        return max(match.timestamp for match in self.matches)


@dataclass
class _PartialSequence:
    """Internal: an in-progress sequence of compatible pattern matches."""

    matches: Dict[str, PatternMatch] = field(default_factory=dict)
    started_at: float = 0.0

    def bindings(self) -> Dict[str, Entity]:
        merged: Dict[str, Entity] = {}
        for match in self.matches.values():
            merged.update(match.bindings)
        return merged

    def is_compatible(self, match: PatternMatch) -> bool:
        """Shared entity variables must bind to the same entity."""
        existing = self.bindings()
        for variable, entity in match.bindings.items():
            bound = existing.get(variable)
            if bound is not None and bound.entity_id != entity.entity_id:
                return False
        return True

    def extended(self, match: PatternMatch) -> "_PartialSequence":
        matches = dict(self.matches)
        matches[match.alias] = match
        return _PartialSequence(matches=matches, started_at=self.started_at)


class MultieventMatcher:
    """Maintains partial sequences and emits complete multievent matches."""

    def __init__(self, query: ast.Query,
                 horizon: Optional[float] = None,
                 max_partial_sequences: int = 10000,
                 compiled: bool = True):
        self._query = query
        self._pattern_matcher = PatternMatcher(query, compiled=compiled)
        self._aliases = [pattern.alias for pattern in query.patterns]
        self._order: Optional[Tuple[str, ...]] = (
            query.temporal_order.aliases
            if query.temporal_order is not None else None)
        window = query.window
        if horizon is not None:
            self._horizon = horizon
        elif window is not None and window.kind == "time":
            self._horizon = window.length
        else:
            self._horizon = DEFAULT_HORIZON
        self._max_partial = max_partial_sequences
        self._partials: List[_PartialSequence] = []

    @property
    def pattern_matcher(self) -> PatternMatcher:
        """Return the underlying single-pattern matcher."""
        return self._pattern_matcher

    def process_event(self, event: Event) -> List[SequenceMatch]:
        """Feed one event; return any sequences completed by it."""
        matches = self._pattern_matcher.match_event(event)
        return self.process_matches(event, matches)

    def process_matches(self, event: Event,
                        matches: Sequence[PatternMatch]
                        ) -> List[SequenceMatch]:
        """Feed pre-computed pattern matches for one event.

        Used by the concurrent scheduler, where a dependent query reuses the
        pattern matches computed by its master query.
        """
        self._expire(event.timestamp)
        if not matches:
            return []
        if len(self._aliases) == 1:
            return [SequenceMatch(matches=(match,)) for match in matches]
        completed: List[SequenceMatch] = []
        for match in matches:
            completed.extend(self._advance(match))
        return completed

    # -- sequence bookkeeping ------------------------------------------------

    def _expire(self, now: float) -> None:
        if not self._partials:
            return
        cutoff = now - self._horizon
        self._partials = [partial for partial in self._partials
                          if partial.started_at >= cutoff]

    def _next_expected(self, partial: _PartialSequence) -> Optional[str]:
        """Return the next alias a partial sequence accepts (ordered mode)."""
        assert self._order is not None
        for alias in self._order:
            if alias not in partial.matches:
                return alias
        return None

    def _advance(self, match: PatternMatch) -> List[SequenceMatch]:
        completed: List[SequenceMatch] = []
        new_partials: List[_PartialSequence] = []

        for partial in self._partials:
            if match.alias in partial.matches:
                continue
            if self._order is not None:
                expected = self._next_expected(partial)
                if expected != match.alias:
                    continue
            if not partial.is_compatible(match):
                continue
            extended = partial.extended(match)
            if len(extended.matches) == len(self._aliases):
                completed.append(self._to_sequence(extended))
            else:
                new_partials.append(extended)

        # A match may also start a new partial sequence (if it is allowed to
        # be the first element).
        if self._can_start(match.alias):
            seed = _PartialSequence(matches={match.alias: match},
                                    started_at=match.timestamp)
            if len(self._aliases) == 1:
                completed.append(self._to_sequence(seed))
            else:
                new_partials.append(seed)

        self._partials.extend(new_partials)
        if len(self._partials) > self._max_partial:
            # Keep the most recent partial sequences; older ones are least
            # likely to complete within the horizon.
            self._partials = self._partials[-self._max_partial:]
        return completed

    def _can_start(self, alias: str) -> bool:
        if self._order is None:
            return True
        return alias == self._order[0]

    def _to_sequence(self, partial: _PartialSequence) -> SequenceMatch:
        ordered_aliases = self._order if self._order else tuple(self._aliases)
        matches = tuple(partial.matches[alias] for alias in ordered_aliases
                        if alias in partial.matches)
        return SequenceMatch(matches=matches)

    @property
    def pending_sequences(self) -> int:
        """Return the number of in-progress partial sequences."""
        return len(self._partials)

    # -- snapshots / state transfer ------------------------------------------

    @staticmethod
    def _encode_partial(partial: _PartialSequence):
        from repro.core.snapshot.codecs import encode_float, encode_match
        return {
            "matches": [[alias, encode_match(match)]
                        for alias, match in partial.matches.items()],
            "started_at": encode_float(partial.started_at),
        }

    @staticmethod
    def _decode_partial(data) -> _PartialSequence:
        from repro.core.snapshot.codecs import decode_float, decode_match
        return _PartialSequence(
            matches={alias: decode_match(match)
                     for alias, match in data["matches"]},
            started_at=decode_float(data["started_at"]),
        )

    def export_state(self):
        """Snapshot the in-flight partial sequences (wire form)."""
        return {"partials": [self._encode_partial(partial)
                             for partial in self._partials]}

    def restore_state(self, state) -> None:
        """Restore :meth:`export_state` output into this matcher."""
        self._partials = [self._decode_partial(data)
                          for data in state["partials"]]

    def extract_partials(self, event_predicate):
        """Remove and return (wire form) the partials of matching hosts.

        ``event_predicate`` receives each partial's first matched event.
        Host-connected queries (the only multi-pattern shape the sharded
        runtime routes to shards) bind every pattern of a partial to one
        host, so any match of the partial attributes it.
        """
        kept: List[_PartialSequence] = []
        extracted: List[_PartialSequence] = []
        for partial in self._partials:
            first = next(iter(partial.matches.values()), None)
            if first is not None and event_predicate(first.event):
                extracted.append(partial)
            else:
                kept.append(partial)
        self._partials = kept
        return {"partials": [self._encode_partial(partial)
                             for partial in extracted]}

    def absorb_partials(self, state) -> None:
        """Merge partials exported by :meth:`extract_partials` (thief side)."""
        self._partials.extend(self._decode_partial(data)
                              for data in state["partials"])
        if len(self._partials) > self._max_partial:
            self._partials = self._partials[-self._max_partial:]
