"""Invariant training and checking.

Invariant-based anomaly models (Query 3 of the paper) learn a description
of normal behaviour over the first *k* sliding windows — e.g. the set of
child processes Apache is seen to spawn — and alert on later deviations.

Training is per group: each group-by key (each Apache instance, each host)
maintains its own invariant variables.  In ``offline`` mode the invariant
is frozen once the training windows have elapsed; in ``online`` mode the
invariant keeps absorbing new behaviour after training (detection still
runs, so a deviation is reported the first time it appears and then
becomes part of the learned invariant).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.core.compile.expressions import CompiledExpr, compile_scalar
from repro.core.engine.context import GroupContext
from repro.core.engine.state import StateHistory
from repro.core.expr.evaluator import ExpressionEvaluator
from repro.core.language import ast


@dataclass
class GroupInvariant:
    """The learned invariant values and training progress of one group."""

    values: Dict[str, Any] = field(default_factory=dict)
    windows_trained: int = 0

    def snapshot(self) -> Dict[str, Any]:
        """Return a copy of the current invariant values."""
        return dict(self.values)


class InvariantMaintainer:
    """Maintains per-group invariants for one query."""

    def __init__(self, block: ast.InvariantBlock, state_name: str,
                 compiled: bool = True):
        self._block = block
        self._state_name = state_name
        self._groups: Dict[Any, GroupInvariant] = {}
        self._compiled_init: Optional[Tuple[Tuple[str, CompiledExpr], ...]] = None
        self._compiled_update: Optional[Tuple[Tuple[str, CompiledExpr], ...]] = None
        if compiled:
            self._compiled_init = tuple(
                (statement.name, compile_scalar(statement.expr))
                for statement in block.init_statements)
            self._compiled_update = tuple(
                (statement.name, compile_scalar(statement.expr))
                for statement in block.update_statements)

    @property
    def training_windows(self) -> int:
        """Return the number of training windows declared by the query."""
        return self._block.training_windows

    @property
    def mode(self) -> str:
        """Return the training mode (``offline`` or ``online``)."""
        return self._block.mode

    def group(self, group_key: Any) -> GroupInvariant:
        """Return (creating if necessary) one group's invariant record."""
        record = self._groups.get(group_key)
        if record is None:
            record = GroupInvariant(values=self._initial_values())
            self._groups[group_key] = record
        return record

    def _initial_values(self) -> Dict[str, Any]:
        values: Dict[str, Any] = {}
        if self._compiled_init is not None:
            context = GroupContext()
            for name, init_fn in self._compiled_init:
                values[name] = init_fn(context)
            return values
        context = GroupContext()
        evaluator = ExpressionEvaluator(context)
        for statement in self._block.init_statements:
            values[statement.name] = evaluator.evaluate(statement.expr)
        return values

    def is_training(self, group_key: Any) -> bool:
        """Return True while a group is still inside its training phase."""
        return self.group(group_key).windows_trained < self.training_windows

    def observe_window(self, group_key: Any,
                       history: StateHistory) -> bool:
        """Fold one closed window into the group's invariant.

        Returns True when the window was a *training* window, in which case
        the engine suppresses alerts for this group (the paper trains on the
        first *k* windows and only detects afterwards).
        """
        record = self.group(group_key)
        training = record.windows_trained < self.training_windows

        should_update = training or self.mode == "online"
        if should_update:
            self._apply_updates(record, history)
        if training:
            record.windows_trained += 1
        return training

    def _apply_updates(self, record: GroupInvariant,
                       history: StateHistory) -> None:
        context = GroupContext(
            state_name=self._state_name,
            history=history,
            invariant_values=record.values,
        )
        updates: Dict[str, Any] = {}
        if self._compiled_update is not None:
            for name, update_fn in self._compiled_update:
                updates[name] = update_fn(context)
        else:
            evaluator = ExpressionEvaluator(context)
            for statement in self._block.update_statements:
                updates[statement.name] = evaluator.evaluate(statement.expr)
        record.values.update(updates)

    def values_for(self, group_key: Any) -> Dict[str, Any]:
        """Return a copy of one group's current invariant values."""
        return self.group(group_key).snapshot()

    # -- snapshots -----------------------------------------------------------

    def export_state(self) -> Dict[str, Any]:
        """Snapshot every group's learned values and training progress."""
        from repro.core.snapshot.codecs import encode_value
        return {
            "groups": [
                [encode_value(group_key),
                 [[name, encode_value(value)]
                  for name, value in record.values.items()],
                 record.windows_trained]
                for group_key, record in self._groups.items()
            ],
        }

    def restore_state(self, data: Dict[str, Any]) -> None:
        """Restore :meth:`export_state` output into this maintainer."""
        from repro.core.snapshot.codecs import decode_value
        self._groups = {
            decode_value(group_key): GroupInvariant(
                values={name: decode_value(value)
                        for name, value in values},
                windows_trained=int(windows_trained))
            for group_key, values, windows_trained in data["groups"]
        }

    @property
    def group_count(self) -> int:
        """Return the number of groups with invariant state."""
        return len(self._groups)
