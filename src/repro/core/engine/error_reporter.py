"""The error reporter (Fig. 1 of the paper).

During concurrent query execution one misbehaving query must not take the
whole stream down; runtime errors are captured as :class:`ErrorRecord`
entries that the CLI and the scheduler surface to the analyst.

Two classes of error are distinguished: *evaluation* errors (SAQL-level —
a type mismatch in an alert expression, a malformed attribute access)
skip one alert and are business as usual, while *fatal* errors (a
compiled closure or columnar plan raising a non-SAQL exception) indicate
a broken query.  The reporter keeps per-query counters for both so the
scheduler's quarantine circuit-breaker — and anyone reading
``SchedulerStats`` — can tell *which* queries are degraded, how badly,
and over what stretch of event time, without scanning the bounded record
list (which drops entries once ``max_records`` is reached; the counters
never do).
"""

from __future__ import annotations

import traceback
from collections import Counter
from dataclasses import dataclass
from typing import Any, Dict, List, Optional


@dataclass(frozen=True)
class ErrorRecord:
    """One captured error, attributed to a query."""

    query_name: str
    message: str
    timestamp: Optional[float] = None
    details: str = ""
    #: True for non-SAQL failures (crashing closures/plans) — the class
    #: of error the quarantine circuit-breaker budgets.
    fatal: bool = False

    def describe(self) -> str:
        """Render a one-line description of the error."""
        when = f" t={self.timestamp:.0f}" if self.timestamp is not None else ""
        kind = "FATAL" if self.fatal else "ERROR"
        return f"[{self.query_name}]{when} {kind}: {self.message}"


class ErrorReporter:
    """Collects errors raised while executing queries over the stream."""

    def __init__(self, max_records: int = 1000):
        self._records: List[ErrorRecord] = []
        self._max_records = max_records
        self._dropped = 0
        self._counts: Counter = Counter()
        self._fatal_counts: Counter = Counter()
        #: query -> (first event-time timestamp, last event-time timestamp)
        self._spans: Dict[str, List[Optional[float]]] = {}
        self._last: Dict[str, ErrorRecord] = {}

    def report(self, query_name: str, error: Exception,
               timestamp: Optional[float] = None,
               fatal: bool = False) -> ErrorRecord:
        """Record an exception and return the stored record."""
        record = ErrorRecord(
            query_name=query_name,
            message=str(error),
            timestamp=timestamp,
            details="".join(traceback.format_exception_only(type(error),
                                                            error)).strip(),
            fatal=fatal,
        )
        if len(self._records) < self._max_records:
            self._records.append(record)
        else:
            self._dropped += 1
        self._counts[query_name] += 1
        if fatal:
            self._fatal_counts[query_name] += 1
        span = self._spans.setdefault(query_name, [timestamp, timestamp])
        if timestamp is not None:
            if span[0] is None or timestamp < span[0]:
                span[0] = timestamp
            if span[1] is None or timestamp > span[1]:
                span[1] = timestamp
        self._last[query_name] = record
        return record

    @property
    def records(self) -> List[ErrorRecord]:
        """Return the captured error records (oldest first)."""
        return list(self._records)

    @property
    def dropped(self) -> int:
        """Return how many errors were dropped after the cap was reached."""
        return self._dropped

    def has_errors(self) -> bool:
        """Return True when at least one error was reported."""
        return bool(self._counts)

    # -- per-query accounting ----------------------------------------------

    def count(self, query_name: str) -> int:
        """Total errors recorded against one query (never truncated)."""
        return self._counts.get(query_name, 0)

    def fatal_count(self, query_name: str) -> int:
        """Fatal (non-SAQL) errors recorded against one query."""
        return self._fatal_counts.get(query_name, 0)

    def counts(self) -> Dict[str, int]:
        """Per-query total error counts."""
        return dict(self._counts)

    def fatal_counts(self) -> Dict[str, int]:
        """Per-query fatal error counts."""
        return dict(self._fatal_counts)

    def last_error(self, query_name: str) -> Optional[ErrorRecord]:
        """The most recent record for one query (survives truncation)."""
        return self._last.get(query_name)

    def per_query(self) -> List[Dict[str, Any]]:
        """Per-query error summary, worst offenders first.

        Each row carries the total and fatal counts, the event-time span
        the errors covered, the per-event-time-second rate over that span
        (0.0 when the span is empty or timestamps were never supplied)
        and the latest message — enough for the CLI and
        ``SchedulerStats`` consumers to say *why* a query is degraded.
        """
        rows: List[Dict[str, Any]] = []
        for name in self._counts:
            first, last = self._spans.get(name, [None, None])
            span = ((last - first)
                    if first is not None and last is not None else 0.0)
            count = self._counts[name]
            record = self._last.get(name)
            rows.append({
                "query": name,
                "errors": count,
                "fatal_errors": self._fatal_counts.get(name, 0),
                "first_timestamp": first,
                "last_timestamp": last,
                "errors_per_second": (count / span if span > 0 else 0.0),
                "last_message": record.message if record is not None else "",
            })
        rows.sort(key=lambda row: (-row["fatal_errors"], -row["errors"],
                                   row["query"]))
        return rows

    def clear_query(self, query_name: str) -> None:
        """Forget one query's counters (re-arming a quarantined query).

        The bounded record list keeps its history — the analyst can still
        see what happened — but the circuit-breaker's budget restarts.
        """
        self._counts.pop(query_name, None)
        self._fatal_counts.pop(query_name, None)
        self._spans.pop(query_name, None)
        self._last.pop(query_name, None)

    def clear(self) -> None:
        """Discard all captured errors."""
        self._records.clear()
        self._dropped = 0
        self._counts.clear()
        self._fatal_counts.clear()
        self._spans.clear()
        self._last.clear()
