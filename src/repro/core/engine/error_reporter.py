"""The error reporter (Fig. 1 of the paper).

During concurrent query execution one misbehaving query must not take the
whole stream down; runtime errors are captured as :class:`ErrorRecord`
entries that the CLI and the scheduler surface to the analyst.
"""

from __future__ import annotations

import traceback
from dataclasses import dataclass, field
from typing import List, Optional


@dataclass(frozen=True)
class ErrorRecord:
    """One captured error, attributed to a query."""

    query_name: str
    message: str
    timestamp: Optional[float] = None
    details: str = ""

    def describe(self) -> str:
        """Render a one-line description of the error."""
        when = f" t={self.timestamp:.0f}" if self.timestamp is not None else ""
        return f"[{self.query_name}]{when} ERROR: {self.message}"


class ErrorReporter:
    """Collects errors raised while executing queries over the stream."""

    def __init__(self, max_records: int = 1000):
        self._records: List[ErrorRecord] = []
        self._max_records = max_records
        self._dropped = 0

    def report(self, query_name: str, error: Exception,
               timestamp: Optional[float] = None) -> ErrorRecord:
        """Record an exception and return the stored record."""
        record = ErrorRecord(
            query_name=query_name,
            message=str(error),
            timestamp=timestamp,
            details="".join(traceback.format_exception_only(type(error),
                                                            error)).strip(),
        )
        if len(self._records) < self._max_records:
            self._records.append(record)
        else:
            self._dropped += 1
        return record

    @property
    def records(self) -> List[ErrorRecord]:
        """Return the captured error records (oldest first)."""
        return list(self._records)

    @property
    def dropped(self) -> int:
        """Return how many errors were dropped after the cap was reached."""
        return self._dropped

    def has_errors(self) -> bool:
        """Return True when at least one error was reported."""
        return bool(self._records)

    def clear(self) -> None:
        """Discard all captured errors."""
        self._records.clear()
        self._dropped = 0
