"""Alert records and alert sinks.

An :class:`Alert` is the engine's output: one detected abnormal behaviour,
carrying the values projected by the query's return clause plus enough
context (query, window, group) for an analyst to investigate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple


@dataclass(frozen=True)
class Alert:
    """One detection result produced by a SAQL query."""

    query_name: str
    timestamp: float
    data: Tuple[Tuple[str, Any], ...]
    model_kind: str = "rule"
    group_key: Any = None
    window_start: Optional[float] = None
    window_end: Optional[float] = None
    agentid: str = ""

    @property
    def record(self) -> Dict[str, Any]:
        """Return the projected return-clause values as a dictionary."""
        return dict(self.data)

    def describe(self) -> str:
        """Render a one-line human-readable description (used by the CLI)."""
        fields = ", ".join(f"{key}={value}" for key, value in self.data)
        window = ""
        if self.window_start is not None and self.window_end is not None:
            window = f" window=[{self.window_start:.0f},{self.window_end:.0f})"
        return (f"[{self.query_name}] t={self.timestamp:.0f}"
                f"{window} {fields}")


class AlertSink:
    """Receives alerts as the engine produces them.

    :meth:`emit` may raise: sinks talk to files, webhooks and user
    callbacks, all of which can fail.  A failed ``emit`` never loses the
    alert — the engine has already recorded it in its ledger before
    emitting — and never aborts the stream: engines with an error
    reporter route the failure through it (feeding the quarantine
    circuit-breaker's counters) and keep processing.  The service layer
    (:mod:`repro.service`) additionally wraps delivery sinks in
    retry/backoff with a dead-letter ledger.
    """

    @property
    def name(self) -> str:
        """A stable identifier for delivery accounting (ledger keys)."""
        return type(self).__name__

    def emit(self, alert: Alert) -> None:
        """Handle one alert."""
        raise NotImplementedError


class CollectingSink(AlertSink):
    """An alert sink that simply accumulates alerts in a list."""

    def __init__(self) -> None:
        self.alerts: List[Alert] = []

    def emit(self, alert: Alert) -> None:
        self.alerts.append(alert)

    def __len__(self) -> int:
        return len(self.alerts)

    def __iter__(self):
        return iter(self.alerts)


class CallbackSink(AlertSink):
    """An alert sink that invokes a callback for each alert.

    The callback is user code; if it raises, the failure follows the
    :class:`AlertSink` contract — reported against the emitting query,
    never fatal to the stream (the alert stays in the engine's ledger).
    """

    def __init__(self, callback) -> None:
        self._callback = callback

    def emit(self, alert: Alert) -> None:
        self._callback(alert)
