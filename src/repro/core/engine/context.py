"""Evaluation contexts used by the engine.

Three contexts implement the :class:`~repro.core.expr.evaluator.EvaluationContext`
protocol:

* :class:`RecordContext` — resolves names against a *single* pattern match
  (used per event inside aggregations and for group-key evaluation);
* :class:`AggregationContext` — resolves aggregation calls over all matches
  of one window group (used for state definitions);
* :class:`GroupContext` — resolves names for alert conditions, return items
  and invariant updates: the state history, invariant variables, the
  cluster result, and representative entity bindings.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.core.cluster.dbscan import ClusterResult
from repro.core.engine.matching import PatternMatch
from repro.core.engine.state import StateHistory, WindowState
from repro.core.errors import SAQLExecutionError
from repro.core.expr import functions
from repro.core.expr.evaluator import ExpressionEvaluator
from repro.core.language import ast
from repro.events.entities import Entity
from repro.events.event import Event


class ClusterView:
    """Exposes a group's clustering outcome to expressions (``cluster.outlier``)."""

    def __init__(self, result: Optional[ClusterResult], group_key: Any):
        self._result = result
        self._group_key = group_key

    @property
    def outlier(self) -> bool:
        """Return True when this group's point was labelled noise."""
        if self._result is None:
            return False
        return self._result.is_outlier(self._group_key)

    @property
    def label(self) -> Optional[int]:
        """Return this group's cluster label (None when not clustered)."""
        if self._result is None:
            return None
        return self._result.label_of(self._group_key)

    def get_attr(self, name: str) -> Any:
        """Attribute access used by the evaluator."""
        if name == "outlier":
            return self.outlier
        if name == "label":
            return self.label
        if name == "n_clusters":
            return self._result.n_clusters if self._result else 0
        return None


def resolve_attribute(value: Any, attr: str) -> Any:
    """Shared ``value.attr`` resolution over the engine's runtime values."""
    if value is None:
        return None
    if isinstance(value, Entity):
        return value.get_attr(attr)
    if isinstance(value, Event):
        return value.get_attr(attr)
    if isinstance(value, WindowState):
        return value.get_field(attr)
    if isinstance(value, StateHistory):
        current = value.current
        if current is None:
            return None
        return current.get_field(attr)
    if isinstance(value, ClusterView):
        return value.get_attr(attr)
    if isinstance(value, dict):
        return value.get(attr)
    raise SAQLExecutionError(
        f"cannot access attribute {attr!r} on value of type "
        f"{type(value).__name__}")


class RecordContext:
    """Resolves names against one pattern match (one event)."""

    def __init__(self, match: PatternMatch):
        self._match = match

    def resolve_name(self, name: str) -> Any:
        if name == self._match.alias or name == "evt":
            return self._match.event
        bound = self._match.bindings.get(name)
        if bound is not None:
            return bound
        return None

    def get_attribute(self, value: Any, attr: str) -> Any:
        return resolve_attribute(value, attr)

    def get_index(self, value: Any, index: Any) -> Any:
        raise SAQLExecutionError("indexing is not supported per event")

    def evaluate_aggregation(self, call: ast.FuncCall) -> Any:
        raise SAQLExecutionError(
            "nested aggregations are not supported")


class AggregationContext:
    """Resolves aggregation calls over the matches of one window group."""

    def __init__(self, matches: Sequence[PatternMatch]):
        self._matches = list(matches)

    def resolve_name(self, name: str) -> Any:
        # Non-aggregated references inside a state definition resolve
        # against the group's most recent match.
        if not self._matches:
            return None
        return RecordContext(self._matches[-1]).resolve_name(name)

    def get_attribute(self, value: Any, attr: str) -> Any:
        return resolve_attribute(value, attr)

    def get_index(self, value: Any, index: Any) -> Any:
        raise SAQLExecutionError(
            "indexing is not supported inside state definitions")

    def evaluate_aggregation(self, call: ast.FuncCall) -> Any:
        if not call.args:
            raise SAQLExecutionError(
                f"aggregation {call.name!r} requires an argument")
        value_expr = call.args[0]
        extra_args: List[float] = []
        for arg in call.args[1:]:
            if not isinstance(arg, ast.Literal):
                raise SAQLExecutionError(
                    f"extra arguments of {call.name!r} must be literals")
            extra_args.append(float(arg.value))
        values = []
        for match in self._matches:
            evaluator = ExpressionEvaluator(RecordContext(match))
            values.append(evaluator.evaluate(value_expr))
        return functions.aggregate(call.name, values, *extra_args)


class GroupContext:
    """Resolves names for alert/return/invariant evaluation of one group."""

    def __init__(self,
                 state_name: Optional[str] = None,
                 history: Optional[StateHistory] = None,
                 invariant_values: Optional[Dict[str, Any]] = None,
                 cluster_view: Optional[ClusterView] = None,
                 bindings: Optional[Dict[str, Entity]] = None,
                 events: Optional[Dict[str, Event]] = None):
        self._state_name = state_name
        self._history = history
        self._invariant_values = invariant_values or {}
        self._cluster_view = cluster_view
        self._bindings = bindings or {}
        self._events = events or {}

    def resolve_name(self, name: str) -> Any:
        if self._state_name is not None and name == self._state_name:
            return self._history
        if name == "cluster":
            return self._cluster_view
        if name in self._invariant_values:
            return self._invariant_values[name]
        if name in self._bindings:
            return self._bindings[name]
        if name in self._events:
            return self._events[name]
        if name == "evt" and len(self._events) == 1:
            return next(iter(self._events.values()))
        return None

    def get_attribute(self, value: Any, attr: str) -> Any:
        return resolve_attribute(value, attr)

    def get_index(self, value: Any, index: Any) -> Any:
        if isinstance(value, StateHistory):
            state = value.get(int(index))
            return state
        if isinstance(value, (list, tuple)):
            position = int(index)
            if 0 <= position < len(value):
                return value[position]
            return None
        raise SAQLExecutionError(
            f"cannot index value of type {type(value).__name__}")

    def evaluate_aggregation(self, call: ast.FuncCall) -> Any:
        raise SAQLExecutionError(
            f"aggregation {call.name!r} cannot appear outside a state block")
