"""Closure-compiled event-pattern predicates.

The interpreter in :mod:`repro.core.engine.matching` re-walks the AST of
every pattern for every stream event.  This module lowers the per-pattern
checks into plain Python closures once, at query registration time:

* entity attribute constraints become a tuple of value predicates with
  LIKE patterns pre-compiled to regexes;
* operation alternations become a frozenset membership test;
* the query's global constraints fuse into a single event predicate;
* the pattern list is indexed by operation keyword, so an event is only
  checked against patterns whose operation alternation can accept it.

The compiled predicates are behaviourally identical to the interpreter
(`tests/compile/` enforces this); the interpreter remains the slow-path
reference implementation.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.expr.values import (
    _compile_like,
    compare_values,
    like_match,
    to_number,
)
from repro.core.language import ast
from repro.events.entities import Entity, EntityType, entity_class_for
from repro.events.event import Event

#: A compiled predicate over one entity.
EntityPredicate = Callable[[Entity], bool]
#: A compiled predicate over one event.
EventPredicate = Callable[[Event], bool]


def _compile_equality(expected: str) -> Callable[[object], bool]:
    """Compile equality against a plain (wildcard-free) string constant.

    Specializes :func:`repro.core.expr.values._values_equal` for the common
    constraint shape (``agentid = "db-server"``): the expected side's
    numeric parse and case folding happen once, at compile time, instead of
    re-raising a ``ValueError`` per event.
    """
    try:
        expected_number: Optional[float] = float(expected)
    except ValueError:
        expected_number = None
    expected_lower = expected.lower()

    def check_equal(value: object) -> bool:
        if value is None:
            return False
        if value == expected:
            # Exact match short-circuits the fold/parse path (identical
            # strings compare equal under every branch below).
            return True
        text = str(value)
        if "%" in text or "_" in text:
            # A wildcard-bearing *value* matches the expected text as a
            # LIKE pattern (symmetric wildcard semantics of the seed).
            return like_match(expected, text)
        if expected_number is not None:
            try:
                return float(text) == expected_number
            except ValueError:
                pass
        return text.lower() == expected_lower

    return check_equal


def _compile_ordering(op: str, expected) -> Optional[Callable[[object], bool]]:
    """Compile an ordering check against a numeric constant (None: bail out)."""
    expected_number = to_number(expected, default=float("nan"))
    if expected_number != expected_number:  # non-numeric: generic path
        return None

    expected_text = str(expected)

    def check_ordering(value: object) -> bool:
        if value is None:
            return False
        number = to_number(value, default=float("nan"))
        if number != number:
            # Fall back to string ordering when the value is non-numeric,
            # as compare_values does.
            left, right = str(value), expected_text
        else:
            left, right = number, expected_number
        if op == ">":
            return left > right
        if op == ">=":
            return left >= right
        if op == "<":
            return left < right
        return left <= right

    return check_ordering


def _compile_value_check(op: str, expected) -> Callable[[object], bool]:
    """Compile one ``<value> <op> <expected>`` check to a closure."""
    if op == "like":
        regex = _compile_like(str(expected))

        def check_like(value: object) -> bool:
            if value is None:
                return False
            return regex.match(str(value)) is not None

        return check_like

    if op in ("==", "=", "!=") and isinstance(expected, str):
        if "%" in expected or "_" in expected:
            # Wildcard-bearing equality is LIKE matching in disguise.
            regex = _compile_like(expected)

            def check_wild(value: object) -> bool:
                if value is None:
                    return False
                return regex.match(str(value)) is not None

            if op == "!=":
                return lambda value: not check_wild(value)
            return check_wild
        equal = _compile_equality(expected)
        if op == "!=":
            return lambda value: not equal(value)
        return equal

    if op in (">", ">=", "<", "<="):
        ordering = _compile_ordering(op, expected)
        if ordering is not None:
            return ordering

    def check_compare(value: object) -> bool:
        return compare_values(op, value, expected)

    return check_compare


def compile_type_check(entity_type: str) -> EntityPredicate:
    """Compile a declared entity-type keyword into an ``entity -> bool`` test.

    The declared keyword maps to one concrete entity class, so the type
    test compiles to an isinstance check (with the string comparison kept
    as a fallback for exotic Entity subclasses).  Shared by the closure
    path below and the columnar type-check kernel
    (:mod:`repro.core.compile.columnar`), so the two modes cannot drift.
    """
    try:
        entity_cls: Optional[type] = entity_class_for(
            EntityType.from_keyword(entity_type))
    except ValueError:
        entity_cls = None

    def type_ok(entity: Entity) -> bool:
        if entity_cls is not None and isinstance(entity, entity_cls):
            return True
        return entity.entity_type.value == entity_type

    return type_ok


def compile_entity_predicate(decl: ast.EntityDeclaration) -> EntityPredicate:
    """Compile an entity declaration into one ``entity -> bool`` closure.

    Equivalent to :func:`repro.core.engine.matching.entity_matches`: the
    entity type must match and every attribute constraint must hold.
    """
    type_ok = compile_type_check(decl.entity_type)

    checks: List[Tuple[Optional[str], Callable[[object], bool]]] = [
        (constraint.attr, _compile_value_check(constraint.op, constraint.value))
        for constraint in decl.constraints
    ]

    if not checks:
        return type_ok

    def predicate(entity: Entity) -> bool:
        if not type_ok(entity):
            return False
        for attr, check in checks:
            if attr is None:
                value = entity.get_attr(entity.default_attribute)
            else:
                value = entity.get_attr(attr)
            if not check(value):
                return False
        return True

    return predicate


def compile_global_constraints(
        constraints: Sequence[ast.GlobalConstraint]) -> EventPredicate:
    """Fuse a query's global constraints into one ``event -> bool`` closure."""
    if not constraints:
        return lambda event: True

    checks: List[Tuple[str, Callable[[object], bool]]] = [
        (constraint.attr, _compile_value_check(constraint.op, constraint.value))
        for constraint in constraints
    ]

    def predicate(event: Event) -> bool:
        for attr, check in checks:
            value = event.get_attr(attr)
            if value is None:
                # Global constraints may also target subject attributes
                # (e.g. a query pinned to events of one executable).
                value = event.subject.get_attr(attr)
            if not check(value):
                return False
        return True

    return predicate


def _pattern_match_cls():
    # Imported lazily (and cached) to avoid a module-level cycle with
    # repro.core.engine.matching, which imports this module.
    global _PATTERN_MATCH
    if _PATTERN_MATCH is None:
        from repro.core.engine.matching import PatternMatch
        _PATTERN_MATCH = PatternMatch
    return _PATTERN_MATCH


_PATTERN_MATCH = None


class CompiledPattern:
    """One event pattern lowered to closures.

    ``match`` mirrors :meth:`repro.core.engine.matching.PatternMatcher.match_pattern`
    but runs only pre-built artifacts: a frozenset membership test for the
    operation alternation and two compiled entity predicates.
    """

    __slots__ = ("declaration", "alias", "operations",
                 "_subject_ok", "_object_ok",
                 "_subject_var", "_object_var", "_match_cls")

    def __init__(self, declaration: ast.EventPatternDeclaration):
        self.declaration = declaration
        self.alias = declaration.alias
        self.operations = frozenset(declaration.operations)
        self._subject_ok = compile_entity_predicate(declaration.subject)
        self._object_ok = compile_entity_predicate(declaration.object)
        self._subject_var = declaration.subject.variable
        self._object_var = declaration.object.variable
        self._match_cls = _pattern_match_cls()

    def match(self, event: Event):
        """Match one event against this pattern (no global constraints)."""
        if event.operation.value not in self.operations:
            return None
        return self.match_accepted_operation(event)

    def match_accepted_operation(self, event: Event):
        """Match an event whose operation is already known to be accepted.

        Used by the operation-indexed dispatch, which has established the
        operation membership before selecting this pattern.
        """
        if not self._subject_ok(event.subject):
            return None
        if not self._object_ok(event.obj):
            return None
        return self._match_cls(
            alias=self.alias,
            event=event,
            bindings={self._subject_var: event.subject,
                      self._object_var: event.obj},
        )


class CompiledPatternSet:
    """All patterns of one query, compiled and indexed by operation."""

    def __init__(self, query: ast.Query):
        self.patterns: Tuple[CompiledPattern, ...] = tuple(
            CompiledPattern(pattern) for pattern in query.patterns)
        self.passes_global_constraints: EventPredicate = (
            compile_global_constraints(query.global_constraints))
        self._by_declaration: Dict[ast.EventPatternDeclaration,
                                   CompiledPattern] = {
            compiled.declaration: compiled for compiled in self.patterns
        }
        self._by_operation: Dict[str, Tuple[CompiledPattern, ...]] = {}
        for compiled in self.patterns:
            for operation in compiled.operations:
                bucket = self._by_operation.get(operation, ())
                self._by_operation[operation] = bucket + (compiled,)

    @property
    def operations(self) -> frozenset:
        """Return every operation keyword any pattern can accept."""
        return frozenset(self._by_operation)

    def patterns_for(self, operation: str) -> Tuple[CompiledPattern, ...]:
        """Return the compiled patterns whose alternation accepts ``operation``."""
        return self._by_operation.get(operation, ())

    def compiled_for(self, declaration: ast.EventPatternDeclaration
                     ) -> Optional[CompiledPattern]:
        """Return the compiled form of one of this query's declarations."""
        return self._by_declaration.get(declaration)

    def match_event(self, event: Event) -> list:
        """Return the pattern matches of one event (globals already passed).

        Only patterns indexed under the event's operation are attempted;
        order follows the query's declaration order, as in the interpreter.
        """
        candidates = self._by_operation.get(event.operation.value)
        if not candidates:
            return []
        matches = []
        for compiled in candidates:
            match = compiled.match_accepted_operation(event)
            if match is not None:
                matches.append(match)
        return matches
