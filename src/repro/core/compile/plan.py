"""The compiled form of one SAQL query.

:func:`compile_query` lowers a parsed, analyzed query into the artifacts
the engine's hot loop consumes: a compiled pattern set (predicates indexed
by operation), a group-key extractor, a state-field computer, and compiled
scalar closures for the alert condition, the return items and the
invariant statements.  The engine builds one :class:`CompiledQuery` at
construction time and never touches the AST again on the per-event path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Sequence, Tuple

from repro.core.compile.expressions import (
    CompiledExpr,
    compile_group_key,
    compile_scalar,
    compile_state_definitions,
)
from repro.core.compile.predicates import CompiledPatternSet
from repro.core.language import ast
from repro.core.language.formatter import format_expression


@dataclass(frozen=True)
class CompiledQuery:
    """Pre-built per-query artifacts for the per-event fast path."""

    query: ast.Query
    #: Compiled patterns + fused global constraints, indexed by operation.
    pattern_set: CompiledPatternSet
    #: ``match -> group key`` (None for queries without a state block).
    group_key: Optional[CompiledExpr]
    #: ``matches -> {field: value}`` (None without a state block).
    state_fields: Optional[Callable[[Sequence[Any]], Dict[str, Any]]]
    #: ``context -> value`` for the alert condition (None without one).
    alert_condition: Optional[CompiledExpr]
    #: ``(label, context -> value)`` per return item (None without returns).
    return_items: Optional[Tuple[Tuple[str, CompiledExpr], ...]]
    #: ``(name, context -> value)`` for invariant init / update statements.
    invariant_init: Tuple[Tuple[str, CompiledExpr], ...]
    invariant_update: Tuple[Tuple[str, CompiledExpr], ...]


def compile_query(query: ast.Query) -> CompiledQuery:
    """Lower one query AST into its compiled execution artifacts."""
    group_key = None
    state_fields = None
    if query.state is not None:
        group_key = compile_group_key(query.state)
        state_fields = compile_state_definitions(query.state)

    alert_condition = None
    if query.alert is not None:
        alert_condition = compile_scalar(query.alert.condition)

    return_items = None
    if query.returns is not None:
        return_items = tuple(
            (item.alias or format_expression(item.expr),
             compile_scalar(item.expr))
            for item in query.returns.items)

    invariant_init: Tuple[Tuple[str, CompiledExpr], ...] = ()
    invariant_update: Tuple[Tuple[str, CompiledExpr], ...] = ()
    if query.invariant is not None:
        invariant_init = tuple(
            (statement.name, compile_scalar(statement.expr))
            for statement in query.invariant.init_statements)
        invariant_update = tuple(
            (statement.name, compile_scalar(statement.expr))
            for statement in query.invariant.update_statements)

    return CompiledQuery(
        query=query,
        pattern_set=CompiledPatternSet(query),
        group_key=group_key,
        state_fields=state_fields,
        alert_condition=alert_condition,
        return_items=return_items,
        invariant_init=invariant_init,
        invariant_update=invariant_update,
    )
