"""Closure-compiled SAQL expressions.

:class:`~repro.core.expr.evaluator.ExpressionEvaluator` walks the
expression AST on every evaluation; these compilers walk it exactly once
and produce nested closures, so the hot loop pays only function calls.
Three compilation modes mirror the interpreter's evaluation contexts:

* :func:`compile_scalar` — closures over an
  :class:`~repro.core.expr.evaluator.EvaluationContext` (alert conditions,
  return items, invariant statements evaluated against a
  :class:`~repro.core.engine.context.GroupContext`);
* :func:`compile_record` — closures over a single
  :class:`~repro.core.engine.matching.PatternMatch`
  (:class:`~repro.core.engine.context.RecordContext` semantics);
* :func:`compile_state_definitions` / :func:`compile_aggregation` —
  closures over the match list of one window group
  (:class:`~repro.core.engine.context.AggregationContext` semantics), with
  aggregation calls lowered to a pre-resolved reducer over a compiled
  per-record value closure.

:func:`compile_group_key` lowers a state block's ``group by`` clause into
one ``match -> key`` extractor, replacing the per-match AST dispatch in
:meth:`~repro.core.engine.state.StateMaintainer.group_key_for`.

Compilation itself never raises for malformed expressions: nodes the
interpreter would reject at evaluation time compile to closures raising
the same :class:`~repro.core.errors.SAQLExecutionError`, so the engine's
per-event error reporting is unchanged.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.errors import SAQLExecutionError
from repro.core.expr import functions, values
from repro.core.language import ast
from repro.events.entities import Entity

#: A compiled expression: one positional argument (context, match or match
#: list depending on the compilation mode) to the expression's value.
CompiledExpr = Callable[[Any], Any]


def _raiser(message: str) -> CompiledExpr:
    """Compile to a closure that raises the interpreter's runtime error."""
    def raise_error(_env: Any) -> Any:
        raise SAQLExecutionError(message)
    return raise_error


def _constant(value: Any) -> CompiledExpr:
    return lambda _env: value


class _Mode:
    """How one compilation mode resolves the context-dependent nodes."""

    def compile_name(self, name: str) -> CompiledExpr:
        raise NotImplementedError

    def compile_attribute(self, base: CompiledExpr, attr: str) -> CompiledExpr:
        raise NotImplementedError

    def compile_index(self, base: CompiledExpr,
                      index: CompiledExpr) -> CompiledExpr:
        raise NotImplementedError

    def compile_aggregation(self, call: ast.FuncCall) -> CompiledExpr:
        raise NotImplementedError

    # -- shared structural lowering ----------------------------------------

    def compile(self, expr: ast.Expression) -> CompiledExpr:
        """Lower one expression node (and its subtree) to a closure."""
        if isinstance(expr, ast.Literal):
            return _constant(expr.value)
        if isinstance(expr, ast.EmptySet):
            return _constant(frozenset())
        if isinstance(expr, ast.Identifier):
            return self.compile_name(expr.name)
        if isinstance(expr, ast.AttributeRef):
            return self.compile_attribute(self.compile(expr.base), expr.attr)
        if isinstance(expr, ast.IndexRef):
            return self.compile_index(self.compile(expr.base),
                                      self.compile(expr.index))
        if isinstance(expr, ast.UnaryOp):
            return self._compile_unary(expr)
        if isinstance(expr, ast.BinaryOp):
            return self._compile_binary(expr)
        if isinstance(expr, ast.SizeOf):
            operand = self.compile(expr.operand)
            return lambda env: values.size_of(operand(env))
        if isinstance(expr, ast.FuncCall):
            return self._compile_call(expr)
        return _raiser(
            f"cannot evaluate expression of type {type(expr).__name__}")

    def _compile_unary(self, expr: ast.UnaryOp) -> CompiledExpr:
        operand = self.compile(expr.operand)
        if expr.op == "!":
            return lambda env: not values.is_truthy(operand(env))
        if expr.op == "-":
            return lambda env: -values.to_number(operand(env))
        message = f"unknown unary operator {expr.op!r}"

        def unknown(env: Any) -> Any:
            operand(env)
            raise SAQLExecutionError(message)
        return unknown

    def _compile_binary(self, expr: ast.BinaryOp) -> CompiledExpr:
        op = expr.op
        left = self.compile(expr.left)
        right = self.compile(expr.right)

        if op == "&&":
            def and_fn(env: Any) -> bool:
                if not values.is_truthy(left(env)):
                    return False
                return values.is_truthy(right(env))
            return and_fn
        if op == "||":
            def or_fn(env: Any) -> bool:
                if values.is_truthy(left(env)):
                    return True
                return values.is_truthy(right(env))
            return or_fn
        if op in (">", ">=", "<", "<=", "==", "=", "!="):
            return lambda env: values.compare_values(op, left(env), right(env))
        if op == "in":
            return lambda env: left(env) in values.as_set(right(env))
        if op == "union":
            return lambda env: values.set_union(left(env), right(env))
        if op == "diff":
            return lambda env: values.set_diff(left(env), right(env))
        if op == "intersect":
            return lambda env: values.set_intersect(left(env), right(env))
        if op == "+":
            return lambda env: (values.to_number(left(env))
                                + values.to_number(right(env)))
        if op == "-":
            return lambda env: (values.to_number(left(env))
                                - values.to_number(right(env)))
        if op == "*":
            return lambda env: (values.to_number(left(env))
                                * values.to_number(right(env)))
        if op == "/":
            def div_fn(env: Any) -> float:
                left_num = values.to_number(left(env))
                right_num = values.to_number(right(env))
                if right_num == 0:
                    return 0.0
                return left_num / right_num
            return div_fn
        if op == "%":
            def mod_fn(env: Any) -> float:
                left_num = values.to_number(left(env))
                right_num = values.to_number(right(env))
                if right_num == 0:
                    return 0.0
                return left_num % right_num
            return mod_fn
        message = f"unknown binary operator {op!r}"

        def unknown(env: Any) -> Any:
            left(env)
            right(env)
            raise SAQLExecutionError(message)
        return unknown

    def _compile_call(self, call: ast.FuncCall) -> CompiledExpr:
        name = call.name.lower()
        if functions.is_aggregation(name):
            return self.compile_aggregation(call)
        scalar = functions.SCALARS.get(name)
        if scalar is not None:
            arg_fns = tuple(self.compile(arg) for arg in call.args)
            return lambda env: scalar(*[arg(env) for arg in arg_fns])
        if name == "all":
            if len(call.args) != 1:
                return _raiser("all() takes exactly one argument")
            return self.compile(call.args[0])
        return _raiser(f"unknown function {call.name!r}")


class _ScalarMode(_Mode):
    """Closures over an :class:`EvaluationContext` (alert/return/invariant)."""

    def compile_name(self, name: str) -> CompiledExpr:
        return lambda ctx: ctx.resolve_name(name)

    def compile_attribute(self, base: CompiledExpr, attr: str) -> CompiledExpr:
        return lambda ctx: ctx.get_attribute(base(ctx), attr)

    def compile_index(self, base: CompiledExpr,
                      index: CompiledExpr) -> CompiledExpr:
        return lambda ctx: ctx.get_index(base(ctx), index(ctx))

    def compile_aggregation(self, call: ast.FuncCall) -> CompiledExpr:
        return lambda ctx: ctx.evaluate_aggregation(call)


class _RecordMode(_Mode):
    """Closures over one :class:`PatternMatch` (RecordContext semantics)."""

    def compile_name(self, name: str) -> CompiledExpr:
        def resolve(match: Any) -> Any:
            if name == match.alias or name == "evt":
                return match.event
            return match.bindings.get(name)
        return resolve

    def compile_attribute(self, base: CompiledExpr, attr: str) -> CompiledExpr:
        from repro.core.engine.context import resolve_attribute
        return lambda match: resolve_attribute(base(match), attr)

    def compile_index(self, base: CompiledExpr,
                      index: CompiledExpr) -> CompiledExpr:
        return _raiser("indexing is not supported per event")

    def compile_aggregation(self, call: ast.FuncCall) -> CompiledExpr:
        return _raiser("nested aggregations are not supported")


class _AggregationMode(_Mode):
    """Closures over one window group's match list (state definitions)."""

    def __init__(self) -> None:
        self._record = _RecordMode()

    def compile_name(self, name: str) -> CompiledExpr:
        # Non-aggregated references inside a state definition resolve
        # against the group's most recent match.
        record_fn = self._record.compile_name(name)

        def resolve(matches: Sequence[Any]) -> Any:
            if not matches:
                return None
            return record_fn(matches[-1])
        return resolve

    def compile_attribute(self, base: CompiledExpr, attr: str) -> CompiledExpr:
        from repro.core.engine.context import resolve_attribute
        return lambda matches: resolve_attribute(base(matches), attr)

    def compile_index(self, base: CompiledExpr,
                      index: CompiledExpr) -> CompiledExpr:
        return _raiser("indexing is not supported inside state definitions")

    def compile_aggregation(self, call: ast.FuncCall) -> CompiledExpr:
        if not call.args:
            return _raiser(f"aggregation {call.name!r} requires an argument")
        extra_args: List[float] = []
        for arg in call.args[1:]:
            if not isinstance(arg, ast.Literal):
                return _raiser(
                    f"extra arguments of {call.name!r} must be literals")
            extra_args.append(float(arg.value))
        value_fn = self._record.compile(call.args[0])
        reducer = functions.AGGREGATIONS[call.name.lower()]
        if extra_args:
            extras = tuple(extra_args)
            return lambda matches: reducer(
                [value_fn(match) for match in matches], *extras)
        return lambda matches: reducer(
            [value_fn(match) for match in matches])


def compile_scalar(expr: ast.Expression) -> CompiledExpr:
    """Compile an expression to a ``context -> value`` closure.

    Equivalent to ``ExpressionEvaluator(context).evaluate(expr)`` for any
    :class:`~repro.core.expr.evaluator.EvaluationContext`.
    """
    return _ScalarMode().compile(expr)


def compile_record(expr: ast.Expression) -> CompiledExpr:
    """Compile an expression to a ``match -> value`` closure.

    Equivalent to evaluating against a
    :class:`~repro.core.engine.context.RecordContext` built on the match.
    """
    return _RecordMode().compile(expr)


def compile_aggregation(expr: ast.Expression) -> CompiledExpr:
    """Compile a state-definition expression to a ``matches -> value`` closure.

    Equivalent to evaluating against an
    :class:`~repro.core.engine.context.AggregationContext` over the matches.
    """
    return _AggregationMode().compile(expr)


def compile_state_definitions(
        state: ast.StateBlock) -> Callable[[Sequence[Any]], Dict[str, Any]]:
    """Compile all of a state block's definitions to one ``matches -> fields``."""
    compiled: Tuple[Tuple[str, CompiledExpr], ...] = tuple(
        (definition.name, compile_aggregation(definition.expr))
        for definition in state.definitions)

    def compute(matches: Sequence[Any]) -> Dict[str, Any]:
        return {name: fn(matches) for name, fn in compiled}

    return compute


def _compile_one_group_key(expr: ast.Expression) -> CompiledExpr:
    """Compile one ``group by`` key, mirroring the interpreter's dispatch."""
    if isinstance(expr, ast.Identifier):
        name = expr.name

        def key_identifier(match: Any) -> Any:
            bound = match.bindings.get(name)
            if isinstance(bound, Entity):
                # Inlined Entity.default_value(): the default attribute is a
                # plain field name, never one of get_attr's special names.
                return getattr(bound, bound.default_attribute, None)
            if name == match.alias:
                return match.event.agentid
            return None
        return key_identifier
    if isinstance(expr, ast.AttributeRef) and isinstance(expr.base,
                                                         ast.Identifier):
        base_name = expr.base.name
        attr = expr.attr

        def key_attribute(match: Any) -> Any:
            bound = match.bindings.get(base_name)
            if isinstance(bound, Entity):
                return bound.get_attr(attr)
            if base_name == match.alias:
                return match.event.get_attr(attr)
            return None
        return key_attribute
    return _constant(None)


def compile_group_key(state: ast.StateBlock) -> CompiledExpr:
    """Compile a state block's ``group by`` clause to a ``match -> key``.

    Equivalent to :meth:`~repro.core.engine.state.StateMaintainer.group_key_for`:
    entity-variable keys group by the entity's default attribute, attribute
    keys by that attribute's value, and no clause puts every match into the
    single ``"__all__"`` group.
    """
    if not state.group_by:
        return _constant("__all__")
    key_fns = tuple(_compile_one_group_key(expr) for expr in state.group_by)
    if len(key_fns) == 1:
        return key_fns[0]
    return lambda match: tuple(fn(match) for fn in key_fns)
