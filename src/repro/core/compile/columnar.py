"""Columnar batch execution: column blocks and a shared predicate index.

The batch ingestion path (PR 2) amortized *dispatch* overhead, but every
event was still evaluated against every query's compiled closures: with Q
concurrent queries a batch of N events cost N×Q global-constraint calls
plus per-pattern entity checks, so doubling the query count halved
throughput (``BENCH_e8.json``).  This module restructures the batch work
around the data instead of the queries:

* :class:`ColumnBlock` is a struct-of-arrays view of one ingest batch —
  the event list plus per-operation row index sub-blocks and lazily built
  attribute columns (timestamp / agentid / subject / object attributes),
  so a predicate only ever scans the rows of the operations it can accept
  and each attribute is fetched once per batch, not once per query;

* :class:`PredicateAtom` is one *canonicalized* atomic predicate — an
  ``<entity-or-event attribute> <op> <constant>`` check or an entity type
  test — lowered to the same value-check closures as the per-event path
  (:mod:`repro.core.compile.predicates`), applied column-at-a-time to
  produce a selection bitmap;

* :class:`SharedPredicateIndex` interns atoms by structural key across
  *all* registered queries, so twenty queries constraining
  ``agentid = "db-server"`` cost one column scan per batch, not twenty.
  The index is refcounted: query registration subscribes atoms
  incrementally, query removal releases them, and plans rebuild lazily
  (the scheduler's dynamic plan invalidation);

* :class:`BatchPredicateContext` caches per-batch artifacts — atom
  bitmaps, global-constraint row selections and whole-pattern conjunction
  row vectors — so structurally equal predicates (and whole patterns)
  are evaluated once per batch and their selection vectors shared by
  every subscribing query, across compatibility groups.

Bitmaps are ``bytearray`` masks of 0/1 bytes; conjunctions combine them
with big-integer bitwise AND (``int.from_bytes``), which processes the
whole batch per machine word instead of per Python-level element.  The
kernels are deliberately pure Python: column values are heterogeneous
Python objects (strings with LIKE wildcards, numeric strings under SAQL
coercion), so the win is evaluating each distinct predicate *once*, not
SIMD.  The per-event closures remain the ``columnar=False`` oracle;
``tests/compile/test_columnar_equivalence.py`` enforces alert-for-alert
parity between the two modes.
"""

from __future__ import annotations

from collections import Counter
from time import perf_counter
from typing import (Any, Callable, Dict, List, Optional, Sequence, Tuple,
                    Union)

from repro.core.compile.predicates import (
    _compile_value_check,
    compile_type_check,
)
from repro.core.language import ast
from repro.events.event import Event

#: Column targets an atom can read from.
SUBJECT = "subject"
OBJECT = "object"
#: Event-level target with the global-constraint fallback (event attribute,
#: then subject attribute), mirroring
#: :func:`repro.core.compile.predicates.compile_global_constraints`.
EVENT = "event"

#: Sentinel attribute tokens (cannot collide with SAQL attribute names,
#: which never start with an underscore).
_DEFAULT_ATTR = "__default__"
_ENTITY_ATTR = "__entity__"

#: Immutable plain types whose cells group by ``(type, value)`` in
#: :meth:`ColumnBlock.value_groups`; everything else (entity objects)
#: groups by identity, which is always sound for pure checks.
_MEMO_TYPES = frozenset((str, int, float, bool, bytes, type(None)))


# ---------------------------------------------------------------------------
# The struct-of-arrays batch representation
# ---------------------------------------------------------------------------

class ColumnBlock:
    """One ingest batch pivoted into columns.

    Built once per batch by the scheduler and shared by every group and
    query.  Rows are batch positions (``0..size-1``) in arrival order;
    the event objects themselves stay the row anchors (the surviving rows
    re-enter the per-match engine path, which consumes events).
    """

    __slots__ = ("events", "size", "rows_by_operation", "operation_values",
                 "_columns", "_operation_unions", "_value_groups")

    def __init__(self, events: Sequence[Event]):
        self.events: Sequence[Event] = events
        self.size = len(events)
        #: Per-operation sub-blocks: operation keyword -> ascending row
        #: indices.  A pattern only ever scans the sub-blocks of the
        #: operations its alternation accepts.
        rows_by_operation: Dict[str, List[int]] = {}
        #: The operation keyword per row, so group drivers test membership
        #: against a plain string instead of an enum descriptor access.
        operation_values: List[str] = []
        for row, event in enumerate(events):
            operation = event.operation.value
            operation_values.append(operation)
            rows_by_operation.setdefault(operation, []).append(row)
        self.rows_by_operation = rows_by_operation
        self.operation_values = operation_values
        self._columns: Dict[Tuple[str, str], list] = {}
        self._operation_unions: Dict[frozenset, List[int]] = {}
        self._value_groups: Dict[Tuple[str, str],
                                 Dict[Any, Tuple[Any, List[int]]]] = {}

    def rows_for_operations(self, operations: frozenset) -> List[int]:
        """Ascending row indices whose operation is in ``operations``."""
        cached = self._operation_unions.get(operations)
        if cached is not None:
            return cached
        buckets = [self.rows_by_operation[operation]
                   for operation in operations
                   if operation in self.rows_by_operation]
        if not buckets:
            rows: List[int] = []
        elif len(buckets) == 1:
            rows = buckets[0]
        else:
            rows = sorted(row for bucket in buckets for row in bucket)
        self._operation_unions[operations] = rows
        return rows

    def column(self, target: str, attr: str) -> list:
        """Return (building lazily) the value column for one atom source.

        ``target`` selects the row object (subject entity, object entity,
        or the event with the global-constraint subject fallback); ``attr``
        is the attribute name or one of the sentinel tokens
        (``__default__`` = the entity's context-aware default attribute,
        ``__entity__`` = the entity object itself, for type checks).
        Columns are cached, so every atom over the same ``(target, attr)``
        pays the attribute fetch once per batch.
        """
        key = (target, attr)
        cached = self._columns.get(key)
        if cached is not None:
            return cached
        events = self.events
        if target == SUBJECT:
            entities: list = [event.subject for event in events]
            values = self._entity_column(entities, attr)
        elif target == OBJECT:
            entities = [event.obj for event in events]
            values = self._entity_column(entities, attr)
        elif target == EVENT:
            if attr == "agentid":
                values = [event.agentid for event in events]
            elif attr == "amount":
                values = [event.amount for event in events]
            elif attr in ("timestamp", "time", "starttime"):
                values = [event.timestamp for event in events]
            else:
                values = []
                for event in events:
                    value = event.get_attr(attr)
                    if value is None:
                        # Global constraints may also target subject
                        # attributes (compile_global_constraints).
                        value = event.subject.get_attr(attr)
                    values.append(value)
        else:
            raise ValueError(f"unknown column target {target!r}")
        self._columns[key] = values
        return values

    @staticmethod
    def _entity_column(entities: list, attr: str) -> list:
        if attr == _ENTITY_ATTR:
            return entities
        if attr == _DEFAULT_ATTR:
            return [entity.get_attr(entity.default_attribute)
                    for entity in entities]
        return [entity.get_attr(attr) for entity in entities]

    def value_groups(self, target: str,
                     attr: str) -> Dict[Any, Tuple[Any, List[int]]]:
        """The column's rows grouped by distinct cell value.

        Keys are ``(type, value)`` for plain immutable cells and ``id``
        for entity objects (see :data:`_MEMO_TYPES`); each entry maps to
        ``(value, ascending rows)``.  Built once per batch per column and
        shared by every full-column atom, which then runs its check once
        per *distinct* value instead of once per row.
        """
        key = (target, attr)
        cached = self._value_groups.get(key)
        if cached is not None:
            return cached
        groups: Dict[Any, Tuple[Any, List[int]]] = {}
        memo_types = _MEMO_TYPES
        for row, value in enumerate(self.column(target, attr)):
            value_type = type(value)
            group_key = ((value_type, value) if value_type in memo_types
                         else id(value))
            entry = groups.get(group_key)
            if entry is None:
                groups[group_key] = (value, [row])
            else:
                entry[1].append(row)
        self._value_groups[key] = groups
        return groups


# ---------------------------------------------------------------------------
# Canonicalized predicate atoms and the cross-query index
# ---------------------------------------------------------------------------

class PredicateAtom:
    """One distinct atomic predicate, shared by every subscribing query.

    ``check`` is the same compiled value-check closure the per-event path
    uses (so semantics cannot drift); the columnar kernel applies it down
    a column.  ``operations()`` is the union of the operation alternations
    of every subscribing pattern (None = evaluate over all rows, used by
    global constraints, which also gate watermark advance), so the atom
    is never evaluated on rows no subscriber could consume.
    """

    __slots__ = ("key", "label", "target", "attr", "check", "refcount",
                 "rows_evaluated", "rows_selected", "_ops_counter")

    def __init__(self, key: Tuple, label: str, target: str, attr: str,
                 check: Callable[[Any], bool]):
        self.key = key
        self.label = label
        self.target = target
        self.attr = attr
        self.check = check
        self.refcount = 0
        #: Cumulative rows this atom was actually evaluated on / selected,
        #: across the scheduler's lifetime (per-predicate selectivity).
        self.rows_evaluated = 0
        self.rows_selected = 0
        # Subscribed operation sets (frozenset, or None for all-rows),
        # counted so releases can retract exactly what they subscribed.
        self._ops_counter: Counter = Counter()

    def subscribe(self, operations: Optional[frozenset]) -> None:
        self.refcount += 1
        self._ops_counter[operations] += 1

    def release(self, operations: Optional[frozenset]) -> None:
        self.refcount -= 1
        self._ops_counter[operations] -= 1
        if self._ops_counter[operations] <= 0:
            del self._ops_counter[operations]

    def operations(self) -> Optional[frozenset]:
        """Rows to evaluate on: union of subscriber ops, None = all rows."""
        if None in self._ops_counter:
            return None
        union: set = set()
        for operations in self._ops_counter:
            union.update(operations)
        return frozenset(union)


class SharedPredicateIndex:
    """Interns structurally-equal predicates across all registered queries.

    Owned by one scheduler; group plans subscribe atoms at build time and
    release them when the plan is invalidated (query added to the group,
    query removed, group dissolved), keeping the distinct-predicate set
    exact under dynamic registration.
    """

    def __init__(self) -> None:
        self._atoms: Dict[Tuple, PredicateAtom] = {}

    def subscribe(self, key: Tuple, label: str, target: str, attr: str,
                  check_factory: Callable[[], Callable[[Any], bool]],
                  operations: Optional[frozenset]) -> PredicateAtom:
        """Return the canonical atom for ``key``, creating it on first use."""
        atom = self._atoms.get(key)
        if atom is None:
            atom = PredicateAtom(key, label, target, attr, check_factory())
            self._atoms[key] = atom
        atom.subscribe(operations)
        return atom

    def release(self, atom: PredicateAtom,
                operations: Optional[frozenset]) -> None:
        """Drop one subscription; the atom dies with its last subscriber."""
        atom.release(operations)
        if atom.refcount <= 0:
            self._atoms.pop(atom.key, None)

    @property
    def distinct_count(self) -> int:
        """How many distinct predicates the registered queries share."""
        return len(self._atoms)

    def atoms(self) -> List[PredicateAtom]:
        """The live atoms (stable order: by human-readable label)."""
        return sorted(self._atoms.values(), key=lambda atom: atom.label)


def _value_key(value: Any) -> Tuple:
    """Hashable, type-discriminating canonical form of a constant.

    Stricter than the pattern signature's ``str(value)`` normalization:
    two constants only share an atom when their compiled closures are
    guaranteed identical (same type, same value).
    """
    try:
        hash(value)
    except TypeError:
        return (type(value).__name__, repr(value))
    return (type(value).__name__, value)


def _atom_label(target: str, attr: str, op: str, value: Any) -> str:
    attr_text = {"__default__": "<default>", "__entity__": "<type>"}.get(
        attr, attr)
    return f"{target}.{attr_text} {op} {value!r}"


def entity_atoms(decl: ast.EntityDeclaration, target: str,
                 operations: frozenset,
                 index: SharedPredicateIndex) -> Tuple[PredicateAtom, ...]:
    """Subscribe the atoms of one entity declaration (type + constraints).

    Decomposes :func:`repro.core.compile.predicates.compile_entity_predicate`
    into independently shareable conjuncts; the conjunction of the returned
    atoms accepts exactly the entities the fused closure accepts (the
    closure short-circuits, but every conjunct is pure, so order is
    irrelevant).
    """
    atoms = [index.subscribe(
        (target, _ENTITY_ATTR, "type", decl.entity_type),
        _atom_label(target, _ENTITY_ATTR, "is", decl.entity_type),
        target, _ENTITY_ATTR,
        lambda entity_type=decl.entity_type: compile_type_check(entity_type),
        operations)]
    for constraint in decl.constraints:
        attr = constraint.attr if constraint.attr is not None else (
            _DEFAULT_ATTR)
        key = (target, attr, constraint.op, _value_key(constraint.value))
        atoms.append(index.subscribe(
            key, _atom_label(target, attr, constraint.op, constraint.value),
            target, attr,
            lambda op=constraint.op, value=constraint.value: (
                _compile_value_check(op, value)),
            operations))
    return tuple(atoms)


def global_atoms(constraints: Sequence[ast.GlobalConstraint],
                 index: SharedPredicateIndex) -> Tuple[PredicateAtom, ...]:
    """Subscribe the atoms of a query's global constraints (all-rows scope)."""
    atoms = []
    for constraint in constraints:
        key = (EVENT, constraint.attr, constraint.op,
               _value_key(constraint.value))
        atoms.append(index.subscribe(
            key,
            _atom_label(EVENT, constraint.attr, constraint.op,
                        constraint.value),
            EVENT, constraint.attr,
            lambda op=constraint.op, value=constraint.value: (
                _compile_value_check(op, value)),
            None))
    return tuple(atoms)


# ---------------------------------------------------------------------------
# Columnar plans (per compatibility group)
# ---------------------------------------------------------------------------

class ColumnarPatternPlan:
    """One pattern lowered to atoms, or marked to reuse a master result."""

    __slots__ = ("pattern", "signature", "shared", "operations", "atoms",
                 "alias", "subject_var", "object_var")

    def __init__(self, pattern: ast.EventPatternDeclaration,
                 operations: frozenset,
                 signature: Optional[Tuple] = None,
                 shared: Optional[Tuple] = None,
                 atoms: Tuple[PredicateAtom, ...] = ()):
        self.pattern = pattern
        #: Master-side pattern signature (masters only; dependents reuse
        #: the master's match through ``shared`` instead).
        self.signature = signature
        #: The master signature whose match this dependent pattern rebinds
        #: (None: the pattern evaluates its own atoms).
        self.shared = shared
        self.operations = operations
        self.atoms = atoms
        self.alias = pattern.alias
        self.subject_var = pattern.subject.variable
        self.object_var = pattern.object.variable


class GroupColumnarPlan:
    """A compatibility group's columnar execution plan.

    Built lazily from the group's registration-time dispatch plans and the
    scheduler's shared predicate index; invalidated (released) whenever
    the group's membership changes, so the index's refcounts — and the
    distinct-predicate accounting — stay exact under dynamic query
    registration and removal.
    """

    __slots__ = ("global_atoms", "global_key", "master", "dependents",
                 "_subscriptions")

    def __init__(self, global_atoms_: Tuple[PredicateAtom, ...],
                 master: Tuple[ColumnarPatternPlan, ...],
                 dependents: List[Tuple[ColumnarPatternPlan, ...]],
                 subscriptions: List[Tuple[PredicateAtom,
                                           Optional[frozenset]]]):
        self.global_atoms = global_atoms_
        #: Cache key for the group's global filter, shared across groups
        #: with structurally equal global constraints.
        self.global_key = tuple(sorted(atom.key for atom in global_atoms_))
        self.master = master
        self.dependents = dependents
        self._subscriptions = subscriptions

    def release(self, index: SharedPredicateIndex) -> None:
        """Retract every atom subscription this plan holds."""
        for atom, operations in self._subscriptions:
            index.release(atom, operations)
        self._subscriptions = []


def build_group_plan(group, index: SharedPredicateIndex) -> GroupColumnarPlan:
    """Lower one :class:`~repro.core.scheduler.concurrent.QueryGroup`.

    Uses the group's existing registration-time plans (master pattern
    signatures, dependent shared-signature markers), so master-dependent
    match reuse is preserved exactly; only the predicate evaluation moves
    from closures to shared column kernels.
    """
    subscriptions: List[Tuple[PredicateAtom, Optional[frozenset]]] = []

    def track(atoms: Tuple[PredicateAtom, ...],
              operations: Optional[frozenset]) -> Tuple[PredicateAtom, ...]:
        subscriptions.extend((atom, operations) for atom in atoms)
        return atoms

    globals_ = track(global_atoms(group.master.query.global_constraints,
                                  index), None)
    master_plans = []
    for pattern, signature, operations, _compiled in group._master_plan:
        atoms = (track(entity_atoms(pattern.subject, SUBJECT, operations,
                                    index), operations)
                 + track(entity_atoms(pattern.object, OBJECT, operations,
                                      index), operations))
        master_plans.append(ColumnarPatternPlan(
            pattern, operations, signature=signature, atoms=atoms))
    dependent_plans: List[Tuple[ColumnarPatternPlan, ...]] = []
    for plan in group._dependent_plans:
        entries = []
        for pattern, shared, operations, _compiled in plan:
            if shared is not None:
                entries.append(ColumnarPatternPlan(pattern, operations,
                                                   shared=shared))
                continue
            atoms = (track(entity_atoms(pattern.subject, SUBJECT,
                                        operations, index), operations)
                     + track(entity_atoms(pattern.object, OBJECT,
                                          operations, index), operations))
            entries.append(ColumnarPatternPlan(pattern, operations,
                                               atoms=atoms))
        dependent_plans.append(tuple(entries))
    return GroupColumnarPlan(globals_, tuple(master_plans), dependent_plans,
                             subscriptions)


# ---------------------------------------------------------------------------
# Per-batch evaluation
# ---------------------------------------------------------------------------

def _and_bitmaps(bitmaps: List[bytearray], size: int) -> bytearray:
    """Bitwise AND of selection bitmaps via big-integer word operations.

    Each byte is 0 or 1, so byte-wise integer AND is exactly element-wise
    boolean AND — one CPython big-int operation instead of a Python-level
    loop per row.
    """
    if len(bitmaps) == 1:
        return bitmaps[0]
    combined = int.from_bytes(bitmaps[0], "little")
    for bitmap in bitmaps[1:]:
        combined &= int.from_bytes(bitmap, "little")
    return bytearray(combined.to_bytes(size, "little"))


class BatchPredicateContext:
    """Per-batch cache of shared selection vectors.

    One context spans every group of a scheduler for one batch; it is the
    object that turns "each query evaluates its predicates" into "each
    *distinct* predicate is evaluated once and its selection shared".
    """

    __slots__ = ("block", "_bitmaps", "_atom_rows", "_global_filters",
                 "_selected_rows", "_candidates", "_conjunctions",
                 "rows_evaluated", "rows_saved", "timed", "eval_seconds")

    def __init__(self, block: ColumnBlock, timed: bool = False):
        self.block = block
        self._bitmaps: Dict[int, bytearray] = {}
        self._atom_rows: Dict[int, List[int]] = {}
        self._global_filters: Dict[Tuple, Optional[bytearray]] = {}
        self._selected_rows: Dict[Tuple, List[int]] = {}
        self._candidates: Dict[Tuple, List[int]] = {}
        self._conjunctions: Dict[Tuple, List[int]] = {}
        #: Column cells actually evaluated this batch (across atoms).
        self.rows_evaluated = 0
        #: Cells *not* evaluated because the atom's selection is shared:
        #: with k subscribers, k-1 of them ride the one evaluation.
        self.rows_saved = 0
        #: When ``timed``, wall seconds spent in first-time atom
        #: evaluations accumulate in ``eval_seconds`` (cache hits pay
        #: nothing) — the scheduler's metrics observe the figure once per
        #: batch as the ``predicate_eval`` stage.
        self.timed = timed
        self.eval_seconds = 0.0

    def bitmap(self, atom: PredicateAtom) -> bytearray:
        """The atom's selection bitmap, evaluated at most once per batch."""
        cached = self._bitmaps.get(id(atom))
        if cached is not None:
            return cached
        started = perf_counter() if self.timed else 0.0
        block = self.block
        operations = atom.operations()
        check = atom.check
        bitmap = bytearray(block.size)
        selected = 0
        # Columns are low-cardinality in practice — a handful of hosts,
        # executables and (heavily reused) entity instances per batch —
        # so run the check once per *distinct* cell via the per-column
        # value groups (built once per batch, shared by every atom
        # reading the column), then only touch the matching rows.
        groups = block.value_groups(atom.target, atom.attr)
        if operations is None:
            # Full-column atom (global constraints).  Its ascending
            # selected-row list doubles as the group's post-filter row
            # set when it is the only global atom (selected_rows).
            matched: List[List[int]] = []
            for value, group_rows in groups.values():
                if check(value):
                    for row in group_rows:
                        bitmap[row] = 1
                    selected += len(group_rows)
                    matched.append(group_rows)
            evaluated = block.size
            if len(matched) == 1:
                selected_rows = matched[0]
            else:
                selected_rows = sorted(row for group in matched
                                       for row in group)
            self._atom_rows[id(atom)] = selected_rows
        else:
            # Operation-restricted atom: matching rows outside the
            # subscribed operations stay 0, exactly as if the check had
            # only run down the operation sub-blocks.
            evaluated = len(block.rows_for_operations(operations))
            operation_values = block.operation_values
            for value, group_rows in groups.values():
                if check(value):
                    for row in group_rows:
                        if operation_values[row] in operations:
                            bitmap[row] = 1
                            selected += 1
        atom.rows_evaluated += evaluated
        atom.rows_selected += selected
        self.rows_evaluated += evaluated
        if atom.refcount > 1:
            self.rows_saved += evaluated * (atom.refcount - 1)
        self._bitmaps[id(atom)] = bitmap
        if self.timed:
            self.eval_seconds += perf_counter() - started
        return bitmap

    def global_filter(self, plan: GroupColumnarPlan) -> Optional[bytearray]:
        """The group's fused global-constraint bitmap (None: no constraints)."""
        key = plan.global_key
        if not key:
            return None
        cached = self._global_filters.get(key)
        if cached is None:
            cached = _and_bitmaps([self.bitmap(atom)
                                   for atom in plan.global_atoms],
                                  self.block.size)
            self._global_filters[key] = cached
        return cached

    def selected_rows(self, group_plan: GroupColumnarPlan,
                      global_bitmap: Optional[bytearray]
                      ) -> Union[range, List[int]]:
        """Ascending rows passing the global filter (all rows when None)."""
        if global_bitmap is None:
            return range(self.block.size)
        global_key = group_plan.global_key
        cached = self._selected_rows.get(global_key)
        if cached is None:
            atoms = group_plan.global_atoms
            if len(atoms) == 1:
                # The fused filter IS the single atom's selection, whose
                # ascending row list the bitmap evaluation already built.
                self.bitmap(atoms[0])
                cached = self._atom_rows[id(atoms[0])]
            else:
                cached = [row for row in range(self.block.size)
                          if global_bitmap[row]]
            self._selected_rows[global_key] = cached
        return cached

    def candidate_rows(self, operations: frozenset,
                       group_plan: GroupColumnarPlan,
                       global_bitmap: Optional[bytearray]) -> List[int]:
        """Rows a pattern must consider: its operations ∩ the global filter.

        This is also the *logical* per-pattern evaluation count — exactly
        the events the per-event closure path would have tested the
        pattern against — which keeps the scheduler's
        ``pattern_evaluations`` accounting identical across modes.
        """
        if global_bitmap is None:
            return self.block.rows_for_operations(operations)
        key = (operations, group_plan.global_key)
        cached = self._candidates.get(key)
        if cached is not None:
            return cached
        # Intersect from the cheaper side: selective global filters leave
        # far fewer rows than the operation sub-blocks.
        selected = self.selected_rows(group_plan, global_bitmap)
        rows = self.block.rows_for_operations(operations)
        if len(selected) <= len(rows):
            operation_values = self.block.operation_values
            rows = [row for row in selected
                    if operation_values[row] in operations]
        else:
            rows = [row for row in rows if global_bitmap[row]]
        self._candidates[key] = rows
        return rows

    def pattern_rows(self, plan: ColumnarPatternPlan,
                     group_plan: GroupColumnarPlan,
                     global_bitmap: Optional[bytearray]) -> List[int]:
        """Rows the whole pattern accepts (conjunction of its atoms).

        Cached by (operations, atom keys, global key): structurally equal
        patterns across different groups share the final selection vector,
        not just the per-atom bitmaps.
        """
        key = (plan.operations, tuple(atom.key for atom in plan.atoms),
               group_plan.global_key)
        cached = self._conjunctions.get(key)
        if cached is not None:
            return cached
        candidates = self.candidate_rows(plan.operations, group_plan,
                                         global_bitmap)
        if not plan.atoms or not candidates:
            rows = candidates
        else:
            combined = _and_bitmaps([self.bitmap(atom)
                                     for atom in plan.atoms],
                                    self.block.size)
            rows = [row for row in candidates if combined[row]]
        self._conjunctions[key] = rows
        return rows
