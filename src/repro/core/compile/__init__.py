"""Query compilation: lowering SAQL ASTs to closures, once per query.

SAQL's pitch is *timely* anomaly analysis over high-volume system
monitoring streams, so the per-event cost of a deployed query dominates
everything else.  The interpreter modules (:mod:`repro.core.expr.evaluator`,
the AST-walking helpers in :mod:`repro.core.engine.matching` and the
per-match dispatch in :mod:`repro.core.engine.state`) re-inspect the query
AST for every event.  This package performs that inspection exactly once,
at :class:`~repro.core.engine.query_engine.QueryEngine` construction time,
and hands the engine plain Python closures:

* **Pattern predicates** (:mod:`.predicates`) — operation alternations
  become frozenset membership tests, entity attribute constraints become
  pre-compiled checks (LIKE patterns compiled to regexes up front), the
  query's global constraints fuse into one event predicate, and the
  pattern list is indexed by operation so an event is only tested against
  patterns that could accept it.
* **Expressions** (:mod:`.expressions`) — alert conditions, return items,
  invariant statements, state aggregation definitions and ``group by``
  keys compile to nested closures; aggregation calls lower to a
  pre-resolved reducer over a compiled per-record value closure.
* **Query plans** (:mod:`.plan`) — :func:`compile_query` bundles the
  artifacts above into one :class:`CompiledQuery` per engine.

**Fast path / slow path.**  The engine runs the compiled artifacts by
default; passing ``compiled=False`` to :class:`QueryEngine` (and to
:class:`~repro.core.engine.matching.PatternMatcher` /
:class:`~repro.core.engine.state.StateMaintainer` /
:class:`~repro.core.engine.invariant.InvariantMaintainer`) selects the
original AST-walking interpreter.  The interpreter is the reference
semantics: the equivalence suite under ``tests/compile/`` asserts that
compiled predicates, group keys and expressions agree with the
interpreter across the demo queries and randomized events, and that both
engine modes produce byte-identical alert streams.  Keep the two paths in
lock-step — any semantic change must land in both, plus a test.
"""

from repro.core.compile.expressions import (
    compile_aggregation,
    compile_group_key,
    compile_record,
    compile_scalar,
    compile_state_definitions,
)
from repro.core.compile.plan import CompiledQuery, compile_query
from repro.core.compile.predicates import (
    CompiledPattern,
    CompiledPatternSet,
    compile_entity_predicate,
    compile_global_constraints,
)

__all__ = [
    "CompiledPattern",
    "CompiledPatternSet",
    "CompiledQuery",
    "compile_aggregation",
    "compile_entity_predicate",
    "compile_global_constraints",
    "compile_group_key",
    "compile_query",
    "compile_record",
    "compile_scalar",
    "compile_state_definitions",
]
