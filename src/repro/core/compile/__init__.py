"""Query compilation: lowering SAQL ASTs to closures, once per query.

SAQL's pitch is *timely* anomaly analysis over high-volume system
monitoring streams, so the per-event cost of a deployed query dominates
everything else.  The interpreter modules (:mod:`repro.core.expr.evaluator`,
the AST-walking helpers in :mod:`repro.core.engine.matching` and the
per-match dispatch in :mod:`repro.core.engine.state`) re-inspect the query
AST for every event.  This package performs that inspection exactly once,
at :class:`~repro.core.engine.query_engine.QueryEngine` construction time,
and hands the engine plain Python closures:

* **Pattern predicates** (:mod:`.predicates`) — operation alternations
  become frozenset membership tests, entity attribute constraints become
  pre-compiled checks (LIKE patterns compiled to regexes up front), the
  query's global constraints fuse into one event predicate, and the
  pattern list is indexed by operation so an event is only tested against
  patterns that could accept it.
* **Expressions** (:mod:`.expressions`) — alert conditions, return items,
  invariant statements, state aggregation definitions and ``group by``
  keys compile to nested closures; aggregation calls lower to a
  pre-resolved reducer over a compiled per-record value closure.
* **Accumulator plans** (:mod:`.accumulators`) — state blocks whose
  definitions have a streaming form lower to per-aggregation accumulators
  (count/sum/avg, Welford stddev, min/max, distinct sets, order-statistic
  buffers) that are updated once per match and merged pane-by-pane for
  overlapping windows, enabling match-buffer elision in the state
  maintainer.
* **Query plans** (:mod:`.plan`) — :func:`compile_query` bundles the
  artifacts above into one :class:`CompiledQuery` per engine.
* **Columnar batches** (:mod:`.columnar`) — ingest batches pivot into a
  struct-of-arrays :class:`ColumnBlock`, compiled predicate atoms are
  canonicalized into a cross-query :class:`SharedPredicateIndex`, and
  each distinct atom is evaluated column-at-a-time once per batch,
  producing selection bitmaps shared by every subscribing query.

**Fast path / slow path.**  The engine runs the compiled artifacts by
default; passing ``compiled=False`` to :class:`QueryEngine` (and to
:class:`~repro.core.engine.matching.PatternMatcher` /
:class:`~repro.core.engine.state.StateMaintainer` /
:class:`~repro.core.engine.invariant.InvariantMaintainer`) selects the
original AST-walking interpreter.  The interpreter is the reference
semantics: the equivalence suite under ``tests/compile/`` asserts that
compiled predicates, group keys and expressions agree with the
interpreter across the demo queries and randomized events, and that the
engine modes produce equivalent alert streams — byte-identical for the
compiled-buffered path, and within float tolerance for the default
incremental-aggregation path (``stddev`` uses Welford's recurrence and
pane merging may re-associate float additions; exact for integral
inputs — see ``tests/engine/test_incremental_equivalence.py``).  Keep
the paths in lock-step — any semantic change must land in all of them,
plus a test.
"""

from repro.core.compile.accumulators import (
    AccumulatorPlan,
    compile_accumulator_plan,
)
from repro.core.compile.expressions import (
    compile_aggregation,
    compile_group_key,
    compile_record,
    compile_scalar,
    compile_state_definitions,
)
from repro.core.compile.columnar import (
    BatchPredicateContext,
    ColumnBlock,
    PredicateAtom,
    SharedPredicateIndex,
)
from repro.core.compile.plan import CompiledQuery, compile_query
from repro.core.compile.predicates import (
    CompiledPattern,
    CompiledPatternSet,
    compile_entity_predicate,
    compile_global_constraints,
    compile_type_check,
)

__all__ = [
    "AccumulatorPlan",
    "BatchPredicateContext",
    "ColumnBlock",
    "CompiledPattern",
    "CompiledPatternSet",
    "CompiledQuery",
    "PredicateAtom",
    "SharedPredicateIndex",
    "compile_accumulator_plan",
    "compile_aggregation",
    "compile_entity_predicate",
    "compile_global_constraints",
    "compile_group_key",
    "compile_query",
    "compile_record",
    "compile_scalar",
    "compile_state_definitions",
    "compile_type_check",
]
