"""Streaming accumulator plans for incremental window aggregation.

The buffered execution path keeps every :class:`PatternMatch` of a
(window, group) bucket and re-reduces the full list when the window
closes; with overlapping sliding windows (hop < length) each match is
stored and re-aggregated once per containing window.  This module lowers
a state block to an **accumulator plan** instead: each aggregation call
becomes a streaming accumulator that is updated exactly once per match
and whose partial states can be *merged*, so the state maintainer can
keep per-pane partials and combine the O(length/hop) panes covering a
window at close (pane/slice sharing, as in Li et al.'s paired windows
and Flink's slice sharing).

A plan also enables **match-buffer elision**: nothing downstream of
:meth:`~repro.core.engine.state.StateMaintainer.close_window` consumes
the raw match list (alert conditions, return items, invariants and
clustering all read the computed ``WindowState.fields`` plus one
representative match), so when every state definition lowers to
accumulators the engine drops the per-window match buffers entirely and
retains one representative match per open (pane, group) bucket.

:func:`compile_accumulator_plan` returns ``None`` when a definition uses
a construct with no streaming form (indexing, nested aggregations,
non-literal aggregation parameters, unknown functions); the maintainer
then falls back to the buffered-recompute path, which reproduces the
interpreter's behaviour — including its close-time errors — exactly.

Equivalence contract with the buffered path: ``count``/``min``/``max``/
``set``/``distinct_count``/``first``/``last``/``median``/``percentile``
are exact; ``sum``/``avg`` are exact per pane and associate float
additions pane-by-pane on merge (bit-identical for integral inputs);
``stddev`` uses Welford's algorithm with Chan's pairwise merge and may
differ from the interpreter's two-pass formula by float rounding.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.compile.expressions import (
    CompiledExpr,
    _Mode,
    _raiser,
    _RecordMode,
)
from repro.core.errors import SAQLExecutionError
from repro.core.expr import functions
from repro.core.expr.values import to_number
from repro.core.language import ast

#: Unary / binary operators the closure compiler implements; anything else
#: compiles to a raiser, which must keep raising at close time (buffered
#: path), so expressions using them are not lowered to accumulators.
_UNARY_OPS = ("!", "-")
_BINARY_OPS = frozenset({
    "&&", "||", ">", ">=", "<", "<=", "==", "=", "!=", "in",
    "union", "diff", "intersect", "+", "-", "*", "/", "%",
})


# ---------------------------------------------------------------------------
# Streaming accumulators
# ---------------------------------------------------------------------------
# Each accumulator implements add(value, seq) — called once per match in
# ingest order — merge(other) — fold another partial in; ``other`` is not
# mutated — and result().  ``seq`` is the maintainer's monotone ingest
# ordinal; only the order-sensitive accumulators (first/last) consult it,
# so pane partials merge correctly even when late events created panes
# out of time order.

class _CountAcc:
    __slots__ = ("n",)

    def __init__(self) -> None:
        self.n = 0

    def add(self, value: Any, seq: int) -> None:
        if value is not None:
            self.n += 1

    def merge(self, other: "_CountAcc") -> None:
        self.n += other.n

    def result(self) -> int:
        return self.n


class _SumAcc:
    __slots__ = ("total",)

    def __init__(self) -> None:
        self.total = 0.0

    def add(self, value: Any, seq: int) -> None:
        if value is not None:
            self.total += to_number(value)

    def merge(self, other: "_SumAcc") -> None:
        self.total += other.total

    def result(self) -> float:
        return self.total


class _AvgAcc:
    __slots__ = ("n", "total")

    def __init__(self) -> None:
        self.n = 0
        self.total = 0.0

    def add(self, value: Any, seq: int) -> None:
        if value is not None:
            self.n += 1
            self.total += to_number(value)

    def merge(self, other: "_AvgAcc") -> None:
        self.n += other.n
        self.total += other.total

    def result(self) -> float:
        if not self.n:
            return 0.0
        return self.total / self.n


class _MinAcc:
    __slots__ = ("best",)

    def __init__(self) -> None:
        self.best: Optional[float] = None

    def add(self, value: Any, seq: int) -> None:
        if value is not None:
            number = to_number(value)
            if self.best is None or number < self.best:
                self.best = number

    def merge(self, other: "_MinAcc") -> None:
        if other.best is not None and (self.best is None
                                       or other.best < self.best):
            self.best = other.best

    def result(self) -> float:
        return self.best if self.best is not None else 0.0


class _MaxAcc:
    __slots__ = ("best",)

    def __init__(self) -> None:
        self.best: Optional[float] = None

    def add(self, value: Any, seq: int) -> None:
        if value is not None:
            number = to_number(value)
            if self.best is None or number > self.best:
                self.best = number

    def merge(self, other: "_MaxAcc") -> None:
        if other.best is not None and (self.best is None
                                       or other.best > self.best):
            self.best = other.best

    def result(self) -> float:
        return self.best if self.best is not None else 0.0


class _SetAcc:
    __slots__ = ("values",)

    def __init__(self) -> None:
        self.values: set = set()

    def add(self, value: Any, seq: int) -> None:
        if value is not None:
            self.values.add(value)

    def merge(self, other: "_SetAcc") -> None:
        self.values |= other.values

    def result(self) -> frozenset:
        return frozenset(self.values)


class _DistinctCountAcc(_SetAcc):
    __slots__ = ()

    def result(self) -> int:  # type: ignore[override]
        return len(self.values)


class _StddevAcc:
    """Welford's online variance with Chan's pairwise merge."""

    __slots__ = ("n", "mean", "m2")

    def __init__(self) -> None:
        self.n = 0
        self.mean = 0.0
        self.m2 = 0.0

    def add(self, value: Any, seq: int) -> None:
        if value is None:
            return
        number = to_number(value)
        self.n += 1
        delta = number - self.mean
        self.mean += delta / self.n
        self.m2 += delta * (number - self.mean)

    def merge(self, other: "_StddevAcc") -> None:
        if not other.n:
            return
        if not self.n:
            self.n, self.mean, self.m2 = other.n, other.mean, other.m2
            return
        combined = self.n + other.n
        delta = other.mean - self.mean
        self.m2 += other.m2 + delta * delta * self.n * other.n / combined
        self.mean = (self.mean * self.n + other.mean * other.n) / combined
        self.n = combined

    def result(self) -> float:
        if self.n < 2:
            return 0.0
        # Population variance, matching functions.agg_stddev; guard the
        # tiny negative m2 float rounding can produce.
        return math.sqrt(max(self.m2 / self.n, 0.0))


class _OrderStatAcc:
    """median / percentile: per-pane value buffer, sorted at finalize.

    Exact order statistics need the values, so this accumulator keeps the
    numeric coercions (floats, not matches) per pane; ``result`` delegates
    to the interpreter's reducers so rank semantics stay identical.
    """

    __slots__ = ("values", "rank")

    def __init__(self, rank: Optional[float]) -> None:
        self.values: List[float] = []
        self.rank = rank

    def add(self, value: Any, seq: int) -> None:
        if value is not None:
            self.values.append(to_number(value))

    def merge(self, other: "_OrderStatAcc") -> None:
        self.values.extend(other.values)

    def result(self) -> float:
        if self.rank is None:
            return functions.agg_median(self.values)
        return functions.agg_percentile(self.values, self.rank)


class _FirstAcc:
    __slots__ = ("seq", "value")

    def __init__(self) -> None:
        self.seq = -1
        self.value: Any = None

    def add(self, value: Any, seq: int) -> None:
        if value is not None and self.seq < 0:
            self.seq = seq
            self.value = value

    def merge(self, other: "_FirstAcc") -> None:
        if other.seq >= 0 and (self.seq < 0 or other.seq < self.seq):
            self.seq = other.seq
            self.value = other.value

    def result(self) -> Any:
        return self.value


class _LastAcc:
    __slots__ = ("seq", "value")

    def __init__(self) -> None:
        self.seq = -1
        self.value: Any = None

    def add(self, value: Any, seq: int) -> None:
        if value is not None:
            self.seq = seq
            self.value = value

    def merge(self, other: "_LastAcc") -> None:
        if other.seq > self.seq:
            self.seq = other.seq
            self.value = other.value

    def result(self) -> Any:
        return self.value


#: Aggregations whose accumulator takes no extra parameter.
_SIMPLE_FACTORIES: Dict[str, Callable[[], Any]] = {
    "count": _CountAcc,
    "sum": _SumAcc,
    "avg": _AvgAcc,
    "min": _MinAcc,
    "max": _MaxAcc,
    "set": _SetAcc,
    "distinct_count": _DistinctCountAcc,
    "stddev": _StddevAcc,
    "first": _FirstAcc,
    "last": _LastAcc,
}


# ---------------------------------------------------------------------------
# Lowerability analysis
# ---------------------------------------------------------------------------

def _record_streamable(expr: ast.Expression) -> bool:
    """Can this per-record expression run inside an accumulator update?

    Mirrors what :class:`_RecordMode` compiles without producing a raiser
    closure: a raiser must keep raising when the window *closes* (the
    buffered path's timing), not once per match at ingest.
    """
    if isinstance(expr, (ast.Literal, ast.EmptySet, ast.Identifier)):
        return True
    if isinstance(expr, ast.AttributeRef):
        return _record_streamable(expr.base)
    if isinstance(expr, ast.UnaryOp):
        return expr.op in _UNARY_OPS and _record_streamable(expr.operand)
    if isinstance(expr, ast.BinaryOp):
        return (expr.op in _BINARY_OPS
                and _record_streamable(expr.left)
                and _record_streamable(expr.right))
    if isinstance(expr, ast.SizeOf):
        return _record_streamable(expr.operand)
    if isinstance(expr, ast.FuncCall):
        name = expr.name.lower()
        if functions.is_aggregation(name):
            return False  # nested aggregations raise at close time
        if name == "all":
            return (len(expr.args) == 1
                    and _record_streamable(expr.args[0]))
        if name in functions.SCALARS:
            return all(_record_streamable(arg) for arg in expr.args)
        return False
    return False


def _aggregation_spec(call: ast.FuncCall
                      ) -> Optional[Tuple[str, Tuple[float, ...]]]:
    """Return (name, literal extras) when the call has a streaming form."""
    if not call.args or call.kwargs:
        return None
    name = call.name.lower()
    extras: List[float] = []
    for arg in call.args[1:]:
        if not isinstance(arg, ast.Literal):
            return None
        try:
            extras.append(float(arg.value))
        except (TypeError, ValueError):
            return None
    # Only percentile takes a parameter; extra arguments on any other
    # aggregation make the interpreter's reducer raise at close time.
    if extras and (name != "percentile" or len(extras) > 1):
        return None
    if not _record_streamable(call.args[0]):
        return None
    return name, tuple(extras)


def _outer_streamable(expr: ast.Expression,
                      calls: List[ast.FuncCall]) -> bool:
    """Check one state definition and collect its aggregation calls."""
    if isinstance(expr, ast.FuncCall):
        name = expr.name.lower()
        if functions.is_aggregation(name):
            if _aggregation_spec(expr) is None:
                return False
            calls.append(expr)
            return True
        if name == "all":
            return (len(expr.args) == 1
                    and _outer_streamable(expr.args[0], calls))
        if name in functions.SCALARS:
            return all(_outer_streamable(arg, calls) for arg in expr.args)
        return False
    if isinstance(expr, (ast.Literal, ast.EmptySet, ast.Identifier)):
        return True
    if isinstance(expr, ast.AttributeRef):
        return _outer_streamable(expr.base, calls)
    if isinstance(expr, ast.UnaryOp):
        return (expr.op in _UNARY_OPS
                and _outer_streamable(expr.operand, calls))
    if isinstance(expr, ast.BinaryOp):
        return (expr.op in _BINARY_OPS
                and _outer_streamable(expr.left, calls)
                and _outer_streamable(expr.right, calls))
    if isinstance(expr, ast.SizeOf):
        return _outer_streamable(expr.operand, calls)
    return False


# ---------------------------------------------------------------------------
# The plan
# ---------------------------------------------------------------------------

class GroupAccumulator:
    """The streaming state of one (bucket, group): slot accumulators plus
    the representative match (the bucket's last match in ingest order,
    standing in for the buffered path's ``matches[-1]``).

    ``error`` holds the first :class:`SAQLExecutionError` a per-record
    value closure raised; it is re-raised when the bucket finalizes, so
    runtime errors in state definitions keep the buffered path's timing
    (reported when the window closes, not once per offending match).
    """

    __slots__ = ("slots", "rep", "rep_seq", "first_seq", "count", "error")

    def __init__(self, slots: List[Any]) -> None:
        self.slots = slots
        self.rep: Any = None
        self.rep_seq = -1
        # Ingest ordinal of the bucket's first match: pane merging uses it
        # to emit a window's groups in first-arrival order, matching the
        # buffered path's dict-insertion order.
        self.first_seq = -1
        self.count = 0
        self.error: Optional[SAQLExecutionError] = None


class _FinalizeMode(_Mode):
    """Closures over ``(slot_results, representative_match)`` environments.

    Mirrors :class:`_AggregationMode`: aggregation calls read their slot's
    finalized value, everything else resolves per-record against the
    representative (the buffered path's ``matches[-1]``).
    """

    def __init__(self, slot_index: Dict[ast.FuncCall, int]) -> None:
        self._slot_index = slot_index
        self._record = _RecordMode()

    def compile_name(self, name: str) -> CompiledExpr:
        record_fn = self._record.compile_name(name)

        def resolve(env: Any) -> Any:
            representative = env[1]
            if representative is None:
                return None
            return record_fn(representative)
        return resolve

    def compile_attribute(self, base: CompiledExpr, attr: str) -> CompiledExpr:
        # Imported lazily, as in expressions.py: engine.context imports
        # engine.state, which imports this module.
        from repro.core.engine.context import resolve_attribute
        return lambda env: resolve_attribute(base(env), attr)

    def compile_index(self, base: CompiledExpr,
                      index: CompiledExpr) -> CompiledExpr:
        return _raiser("indexing is not supported inside state definitions")

    def compile_aggregation(self, call: ast.FuncCall) -> CompiledExpr:
        slot = self._slot_index[call]
        return lambda env: env[0][slot]


class AccumulatorPlan:
    """The lowered form of one state block: slot accumulator factories,
    per-slot ``match -> value`` closures, and per-definition finalizers
    over ``(slot_results, representative)``."""

    def __init__(self,
                 factories: Sequence[Callable[[], Any]],
                 value_fns: Sequence[CompiledExpr],
                 value_slots: Sequence[Tuple[int, ...]],
                 fields: Sequence[Tuple[str, CompiledExpr]]) -> None:
        self._factories = tuple(factories)
        # One compiled value closure per *distinct* value expression,
        # paired with the slot indices it feeds — so
        # ``count/sum/avg/stddev/percentile`` over the same attribute
        # evaluate it once per match, not once per aggregation.  Pre-zip
        # so the once-per-match update loop allocates nothing.
        self._value_pairs = tuple(zip(value_fns, value_slots))
        self._fields = tuple(fields)

    @property
    def slot_count(self) -> int:
        """Return how many distinct aggregation slots the plan keeps."""
        return len(self._factories)

    def new_group(self) -> GroupAccumulator:
        """Create the empty streaming state of one (bucket, group)."""
        return GroupAccumulator([factory() for factory in self._factories])

    def update(self, group: GroupAccumulator, match: Any, seq: int) -> None:
        """Fold one match into a bucket group — the once-per-match touch."""
        group.count += 1
        group.rep = match
        group.rep_seq = seq
        if group.first_seq < 0:
            group.first_seq = seq
        slots = group.slots
        try:
            for value_fn, indices in self._value_pairs:
                value = value_fn(match)
                for index in indices:
                    slots[index].add(value, seq)
        except SAQLExecutionError as error:
            if group.error is None:
                group.error = error

    def merge(self, target: GroupAccumulator,
              source: GroupAccumulator) -> None:
        """Fold a pane partial into a window's merged state (source intact)."""
        target.count += source.count
        if source.rep_seq > target.rep_seq:
            target.rep = source.rep
            target.rep_seq = source.rep_seq
        if source.first_seq >= 0 and (target.first_seq < 0
                                      or source.first_seq < target.first_seq):
            target.first_seq = source.first_seq
        if target.error is None and source.error is not None:
            target.error = source.error
        for accumulator, partial in zip(target.slots, source.slots):
            accumulator.merge(partial)

    def finalize(self, group: GroupAccumulator) -> Dict[str, Any]:
        """Compute the state fields of one closed (window, group).

        Re-raises the first per-record error the bucket absorbed, giving
        malformed values the same close-time failure as the buffered
        recompute.
        """
        if group.error is not None:
            raise group.error
        env = (tuple(accumulator.result() for accumulator in group.slots),
               group.rep)
        return {name: field_fn(env) for name, field_fn in self._fields}


def compile_accumulator_plan(state: ast.StateBlock
                             ) -> Optional[AccumulatorPlan]:
    """Lower a state block to an accumulator plan (None when not possible).

    Structurally identical aggregation calls across definitions share one
    slot, so ``avg(evt.amount)`` appearing in two definitions is
    accumulated once per match.
    """
    calls: List[ast.FuncCall] = []
    for definition in state.definitions:
        if not _outer_streamable(definition.expr, calls):
            return None
    record = _RecordMode()
    slot_index: Dict[ast.FuncCall, int] = {}
    factories: List[Callable[[], Any]] = []
    value_groups: Dict[ast.Expression, Tuple[CompiledExpr, List[int]]] = {}
    for call in calls:
        if call in slot_index:
            continue
        spec = _aggregation_spec(call)
        assert spec is not None  # guaranteed by _outer_streamable
        name, extras = spec
        slot = len(factories)
        slot_index[call] = slot
        factories.append(_make_factory(name, extras))
        value_expr = call.args[0]
        group = value_groups.get(value_expr)
        if group is None:
            value_groups[value_expr] = (record.compile(value_expr), [slot])
        else:
            group[1].append(slot)
    mode = _FinalizeMode(slot_index)
    fields = tuple((definition.name, mode.compile(definition.expr))
                   for definition in state.definitions)
    return AccumulatorPlan(
        factories,
        [value_fn for value_fn, _ in value_groups.values()],
        [tuple(slots) for _, slots in value_groups.values()],
        fields)


def _make_factory(name: str,
                  extras: Tuple[float, ...]) -> Callable[[], Any]:
    if name == "percentile":
        rank = extras[0] if extras else 95.0
        return lambda: _OrderStatAcc(rank)
    if name == "median":
        return lambda: _OrderStatAcc(None)
    return _SIMPLE_FACTORIES[name]
