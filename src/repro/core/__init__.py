"""The SAQL core: query language, expression evaluation, and execution engine.

The public API most applications need is re-exported here:

* :func:`parse_query` — parse SAQL text into a checked query object;
* :class:`QueryEngine` — execute one query over an event stream;
* :class:`ConcurrentQueryScheduler` — execute many queries with the
  master-dependent-query sharing scheme;
* :class:`ShardedScheduler` — execute many queries sharded by ``agentid``
  across worker processes (or in-process shards);
* :class:`Alert` — the engine's output record.
"""

from repro.core.errors import (
    SAQLError,
    SAQLExecutionError,
    SAQLParseError,
    SAQLSemanticError,
)
from repro.core.language import parse_query
from repro.core.engine.alerts import Alert
from repro.core.engine.query_engine import QueryEngine
from repro.core.scheduler.concurrent import ConcurrentQueryScheduler
from repro.core.parallel import ShardedScheduler

__all__ = [
    "Alert",
    "ConcurrentQueryScheduler",
    "QueryEngine",
    "ShardedScheduler",
    "SAQLError",
    "SAQLExecutionError",
    "SAQLParseError",
    "SAQLSemanticError",
    "parse_query",
]
