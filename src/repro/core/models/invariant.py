"""Builder for invariant-based anomaly queries.

Invariant models (Query 3 of the paper) learn a set-valued description of
normal behaviour during a training period — e.g. which child processes a
service is known to spawn — and alert on later additions to that set.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.language import ast, parse_query


class InvariantQueryBuilder:
    """Assembles an invariant-learning SAQL query."""

    def __init__(self, name: str = "invariant-query"):
        self.name = name
        self._agentid: Optional[str] = None
        self._parent_pattern = "%service%"
        self._operation = "start"
        self._tracked_attr = "exe_name"
        self._window_seconds = 10.0
        self._training_windows = 10
        self._mode = "offline"
        self._group_by = "p1"

    def on_agent(self, agentid: str) -> "InvariantQueryBuilder":
        """Restrict to one host agent."""
        self._agentid = agentid
        return self

    def parent(self, pattern: str) -> "InvariantQueryBuilder":
        """Set the parent process pattern whose behaviour is learned."""
        self._parent_pattern = pattern
        return self

    def operation(self, op: str) -> "InvariantQueryBuilder":
        """Set the monitored operation (default ``start``)."""
        self._operation = op
        return self

    def tracked_attribute(self, attr: str) -> "InvariantQueryBuilder":
        """Set the child attribute collected into the invariant set."""
        self._tracked_attr = attr
        return self

    def window_seconds(self, seconds: float) -> "InvariantQueryBuilder":
        """Set the sliding-window length in seconds."""
        self._window_seconds = float(seconds)
        return self

    def training(self, windows: int,
                 mode: str = "offline") -> "InvariantQueryBuilder":
        """Set the number of training windows and the training mode."""
        if windows < 1:
            raise ValueError("training needs at least one window")
        if mode not in ("offline", "online"):
            raise ValueError("mode must be 'offline' or 'online'")
        self._training_windows = int(windows)
        self._mode = mode
        return self

    def to_saql(self) -> str:
        """Render the accumulated specification as SAQL text."""
        lines: List[str] = []
        if self._agentid:
            lines.append(f'agentid = "{self._agentid}"')
        window = self._window_seconds
        window_text = (f"{int(window)} s" if float(window).is_integer()
                       else f"{window} s")
        lines.append(
            f'proc p1["{self._parent_pattern}"] {self._operation} proc p2 '
            f"as evt #time({window_text})")
        lines.append("state ss {")
        lines.append(f"  observed := set(p2.{self._tracked_attr})")
        lines.append(f"}} group by {self._group_by}")
        lines.append(
            f"invariant[{self._training_windows}][{self._mode}] {{")
        lines.append("  known := empty_set")
        lines.append("  known = known union ss.observed")
        lines.append("}")
        lines.append("alert |ss.observed diff known| > 0")
        lines.append(f"return {self._group_by}, ss.observed")
        return "\n".join(lines)

    def build(self) -> ast.Query:
        """Parse the generated SAQL text into a checked query."""
        query = parse_query(self.to_saql())
        query.name = self.name
        return query
