"""Programmatic builders for the four anomaly-model classes.

Writing SAQL text is the primary interface, but applications that generate
queries (dashboards, policy compilers) can use these builders to assemble
the paper's four anomaly-model classes without string templating:

* :class:`RuleQueryBuilder` — multi-event rule-based models;
* :class:`TimeSeriesQueryBuilder` — sliding-window moving-average models;
* :class:`InvariantQueryBuilder` — invariant learning models;
* :class:`OutlierQueryBuilder` — clustering-based peer-comparison models.

Each builder produces SAQL text (``to_saql()``) and a parsed query
(``build()``), so everything still flows through the same language
front-end and engine.
"""

from repro.core.models.rule_based import RuleQueryBuilder
from repro.core.models.time_series import TimeSeriesQueryBuilder, simple_moving_average
from repro.core.models.invariant import InvariantQueryBuilder
from repro.core.models.outlier import OutlierQueryBuilder

__all__ = [
    "InvariantQueryBuilder",
    "OutlierQueryBuilder",
    "RuleQueryBuilder",
    "TimeSeriesQueryBuilder",
    "simple_moving_average",
]
