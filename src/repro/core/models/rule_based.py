"""Builder for rule-based anomaly queries.

Rule-based models (Query 1 of the paper) specify known attack behaviours:
a sequence of event patterns with attribute constraints, temporal order and
shared entity variables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.core.language import ast, parse_query


@dataclass
class _PatternSpec:
    subject_type: str
    subject_var: str
    subject_pattern: Optional[str]
    operations: Tuple[str, ...]
    object_type: str
    object_var: str
    object_pattern: Optional[str]
    object_constraints: Tuple[Tuple[str, str], ...]
    alias: str


class RuleQueryBuilder:
    """Assembles a rule-based SAQL query step by step."""

    def __init__(self, name: str = "rule-query"):
        self.name = name
        self._global_constraints: List[Tuple[str, str]] = []
        self._patterns: List[_PatternSpec] = []
        self._temporal: List[str] = []
        self._returns: List[str] = []
        self._distinct = True

    def on_agent(self, agentid: str) -> "RuleQueryBuilder":
        """Restrict the query to events observed on one host agent."""
        self._global_constraints.append(("agentid", agentid))
        return self

    def pattern(self, subject_var: str, operations: Sequence[str],
                object_type: str, object_var: str,
                subject_pattern: Optional[str] = None,
                object_pattern: Optional[str] = None,
                object_constraints: Sequence[Tuple[str, str]] = (),
                alias: Optional[str] = None) -> "RuleQueryBuilder":
        """Add one event pattern (subject is always a process)."""
        alias = alias or f"evt{len(self._patterns) + 1}"
        self._patterns.append(_PatternSpec(
            subject_type="proc",
            subject_var=subject_var,
            subject_pattern=subject_pattern,
            operations=tuple(operations),
            object_type=object_type,
            object_var=object_var,
            object_pattern=object_pattern,
            object_constraints=tuple(object_constraints),
            alias=alias,
        ))
        return self

    def in_order(self, *aliases: str) -> "RuleQueryBuilder":
        """Require the named patterns to occur in the given temporal order."""
        self._temporal = list(aliases)
        return self

    def returning(self, *items: str, distinct: bool = True
                  ) -> "RuleQueryBuilder":
        """Set the return clause items (SAQL expressions as text)."""
        self._returns = list(items)
        self._distinct = distinct
        return self

    def to_saql(self) -> str:
        """Render the accumulated specification as SAQL text."""
        if not self._patterns:
            raise ValueError("a rule query needs at least one pattern")
        lines: List[str] = []
        for attr, value in self._global_constraints:
            lines.append(f'{attr} = "{value}"')
        for spec in self._patterns:
            subject = f"{spec.subject_type} {spec.subject_var}"
            if spec.subject_pattern:
                subject += f'["{spec.subject_pattern}"]'
            obj = f"{spec.object_type} {spec.object_var}"
            object_parts = []
            if spec.object_pattern:
                object_parts.append(f'"{spec.object_pattern}"')
            object_parts.extend(f'{attr}="{value}"'
                                for attr, value in spec.object_constraints)
            if object_parts:
                obj += f"[{', '.join(object_parts)}]"
            ops = " || ".join(spec.operations)
            lines.append(f"{subject} {ops} {obj} as {spec.alias}")
        if self._temporal:
            lines.append("with " + " -> ".join(self._temporal))
        returns = self._returns or [spec.subject_var
                                    for spec in self._patterns]
        prefix = "return distinct " if self._distinct else "return "
        lines.append(prefix + ", ".join(returns))
        return "\n".join(lines)

    def build(self) -> ast.Query:
        """Parse the generated SAQL text into a checked query."""
        query = parse_query(self.to_saql())
        query.name = self.name
        return query
