"""Builder for time-series anomaly queries (simple moving average).

Time-series models (Query 2 of the paper) track a per-group aggregate over
sliding windows and alert when the newest window deviates from the moving
average of the recent history — e.g. a process suddenly sending far more
data over the network than it used to.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.language import ast, parse_query


def simple_moving_average(values: Sequence[float]) -> float:
    """Return the arithmetic mean of a window-history series (SMA)."""
    values = list(values)
    if not values:
        return 0.0
    return sum(values) / len(values)


class TimeSeriesQueryBuilder:
    """Assembles an SMA-style time-series SAQL query."""

    def __init__(self, name: str = "time-series-query"):
        self.name = name
        self._agentid: Optional[str] = None
        self._subject_pattern: Optional[str] = None
        self._operations: List[str] = ["write"]
        self._object_type = "ip"
        self._window_minutes = 10.0
        self._history = 3
        self._aggregation = "avg"
        self._metric_attr = "amount"
        self._group_by = "p"
        self._min_threshold = 10000.0

    def on_agent(self, agentid: str) -> "TimeSeriesQueryBuilder":
        """Restrict to one host agent."""
        self._agentid = agentid
        return self

    def subject(self, pattern: str) -> "TimeSeriesQueryBuilder":
        """Constrain the subject process executable name (LIKE pattern)."""
        self._subject_pattern = pattern
        return self

    def operations(self, *ops: str) -> "TimeSeriesQueryBuilder":
        """Set the monitored operations (default: ``write``)."""
        self._operations = list(ops)
        return self

    def window_minutes(self, minutes: float) -> "TimeSeriesQueryBuilder":
        """Set the sliding-window length in minutes."""
        self._window_minutes = float(minutes)
        return self

    def history(self, windows: int) -> "TimeSeriesQueryBuilder":
        """Set how many windows the moving average spans (including current)."""
        if windows < 2:
            raise ValueError("a moving average needs at least 2 windows")
        self._history = int(windows)
        return self

    def metric(self, aggregation: str, attr: str) -> "TimeSeriesQueryBuilder":
        """Set the per-window aggregate, e.g. ``avg``/``sum`` of ``amount``."""
        self._aggregation = aggregation
        self._metric_attr = attr
        return self

    def minimum(self, threshold: float) -> "TimeSeriesQueryBuilder":
        """Set the absolute floor below which no alert fires."""
        self._min_threshold = float(threshold)
        return self

    def to_saql(self) -> str:
        """Render the accumulated specification as SAQL text."""
        lines: List[str] = []
        if self._agentid:
            lines.append(f'agentid = "{self._agentid}"')
        subject = "proc p"
        if self._subject_pattern:
            subject += f'["{self._subject_pattern}"]'
        ops = " || ".join(self._operations)
        window_min = self._window_minutes
        window_text = (f"{int(window_min)} min"
                       if float(window_min).is_integer() else
                       f"{window_min * 60} s")
        lines.append(
            f"{subject} {ops} {self._object_type} i as evt #time({window_text})")
        lines.append(f"state[{self._history}] ss {{")
        lines.append(
            f"  value := {self._aggregation}(evt.{self._metric_attr})")
        lines.append(f"}} group by {self._group_by}")
        history_terms = " + ".join(f"ss[{i}].value"
                                   for i in range(self._history))
        lines.append(
            f"alert (ss[0].value > ({history_terms}) / {self._history}) && "
            f"(ss[0].value > {_format_number(self._min_threshold)})")
        returns = ", ".join([self._group_by] +
                            [f"ss[{i}].value" for i in range(self._history)])
        lines.append(f"return {returns}")
        return "\n".join(lines)

    def build(self) -> ast.Query:
        """Parse the generated SAQL text into a checked query."""
        query = parse_query(self.to_saql())
        query.name = self.name
        return query


def _format_number(value: float) -> str:
    if float(value).is_integer():
        return str(int(value))
    return str(value)
