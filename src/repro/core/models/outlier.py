"""Builder for outlier-based anomaly queries (peer comparison).

Outlier models (Query 4 of the paper) compute one comparison point per
group in each sliding window and flag groups whose point is labelled as
noise by a clustering algorithm (DBSCAN in the paper).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.language import ast, parse_query


class OutlierQueryBuilder:
    """Assembles a clustering-based outlier SAQL query."""

    def __init__(self, name: str = "outlier-query"):
        self.name = name
        self._agentid: Optional[str] = None
        self._subject_pattern: Optional[str] = None
        self._operations: List[str] = ["read", "write"]
        self._object_type = "ip"
        self._window_minutes = 10.0
        self._metric = ("sum", "amount")
        self._group_by = "i.dstip"
        self._distance = "ed"
        self._method = "DBSCAN"
        self._method_args: Tuple[float, ...] = (100000.0, 5.0)
        self._min_threshold = 1000000.0

    def on_agent(self, agentid: str) -> "OutlierQueryBuilder":
        """Restrict to one host agent."""
        self._agentid = agentid
        return self

    def subject(self, pattern: str) -> "OutlierQueryBuilder":
        """Constrain the subject process executable name (LIKE pattern)."""
        self._subject_pattern = pattern
        return self

    def operations(self, *ops: str) -> "OutlierQueryBuilder":
        """Set the monitored operations."""
        self._operations = list(ops)
        return self

    def window_minutes(self, minutes: float) -> "OutlierQueryBuilder":
        """Set the sliding-window length in minutes."""
        self._window_minutes = float(minutes)
        return self

    def metric(self, aggregation: str, attr: str) -> "OutlierQueryBuilder":
        """Set the per-group comparison metric."""
        self._metric = (aggregation, attr)
        return self

    def group_by(self, key: str) -> "OutlierQueryBuilder":
        """Set the peer-grouping key (default ``i.dstip``)."""
        self._group_by = key
        return self

    def clustering(self, method: str, *args: float,
                   distance: str = "ed") -> "OutlierQueryBuilder":
        """Set the clustering method, its parameters and the distance code."""
        self._method = method
        self._method_args = tuple(float(arg) for arg in args)
        self._distance = distance
        return self

    def minimum(self, threshold: float) -> "OutlierQueryBuilder":
        """Set the absolute floor below which no alert fires."""
        self._min_threshold = float(threshold)
        return self

    def to_saql(self) -> str:
        """Render the accumulated specification as SAQL text."""
        lines: List[str] = []
        if self._agentid:
            lines.append(f'agentid = "{self._agentid}"')
        subject = "proc p"
        if self._subject_pattern:
            subject += f'["{self._subject_pattern}"]'
        ops = " || ".join(self._operations)
        window = self._window_minutes
        window_text = (f"{int(window)} min" if float(window).is_integer()
                       else f"{window * 60} s")
        lines.append(
            f"{subject} {ops} {self._object_type} i as evt #time({window_text})")
        aggregation, attr = self._metric
        lines.append("state ss {")
        lines.append(f"  amt := {aggregation}(evt.{attr})")
        lines.append(f"}} group by {self._group_by}")
        method = self._method
        if self._method_args:
            args = ", ".join(_format_number(arg) for arg in self._method_args)
            method += f"({args})"
        lines.append(
            f'cluster(points=all(ss.amt), distance="{self._distance}", '
            f'method="{method}")')
        lines.append(
            f"alert cluster.outlier && ss.amt > "
            f"{_format_number(self._min_threshold)}")
        lines.append(f"return {self._group_by}, ss.amt")
        return "\n".join(lines)

    def build(self) -> ast.Query:
        """Parse the generated SAQL text into a checked query."""
        query = parse_query(self.to_saql())
        query.name = self.name
        return query


def _format_number(value: float) -> str:
    if float(value).is_integer():
        return str(int(value))
    return str(value)
