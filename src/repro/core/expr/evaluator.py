"""The SAQL expression evaluator.

The evaluator walks expression ASTs and produces runtime values.  It is
parameterized by an :class:`EvaluationContext`, which the engine implements
to resolve names (entity variables, pattern aliases, the state name,
invariant variables, ``cluster``) and to evaluate aggregation calls against
the current window group.

Two evaluation modes exist:

* **scalar mode** (alert conditions, return items, invariant updates) —
  aggregation calls are *not* re-computed; the context resolves already-
  aggregated state fields;
* **aggregation mode** (state definitions) — aggregation calls reduce the
  per-event values of the current window group; the context supplies the
  per-event evaluation hook.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Protocol, Sequence

from repro.core.errors import SAQLExecutionError
from repro.core.expr import functions, values
from repro.core.language import ast


class EvaluationContext(Protocol):
    """What the evaluator needs from its surrounding execution context."""

    def resolve_name(self, name: str) -> Any:
        """Resolve a bare identifier to a runtime value."""
        ...

    def get_attribute(self, value: Any, attr: str) -> Any:
        """Resolve ``value.attr``."""
        ...

    def get_index(self, value: Any, index: Any) -> Any:
        """Resolve ``value[index]``."""
        ...

    def evaluate_aggregation(self, call: ast.FuncCall) -> Any:
        """Evaluate an aggregation call against the current window group."""
        ...


class ExpressionEvaluator:
    """Evaluates expression ASTs against an :class:`EvaluationContext`."""

    def __init__(self, context: EvaluationContext):
        self._context = context

    def evaluate(self, expr: ast.Expression) -> Any:
        """Evaluate ``expr`` and return its runtime value."""
        if isinstance(expr, ast.Literal):
            return expr.value
        if isinstance(expr, ast.EmptySet):
            return frozenset()
        if isinstance(expr, ast.Identifier):
            return self._context.resolve_name(expr.name)
        if isinstance(expr, ast.AttributeRef):
            base = self.evaluate(expr.base)
            return self._context.get_attribute(base, expr.attr)
        if isinstance(expr, ast.IndexRef):
            base = self.evaluate(expr.base)
            index = self.evaluate(expr.index)
            return self._context.get_index(base, index)
        if isinstance(expr, ast.UnaryOp):
            return self._evaluate_unary(expr)
        if isinstance(expr, ast.BinaryOp):
            return self._evaluate_binary(expr)
        if isinstance(expr, ast.SizeOf):
            return values.size_of(self.evaluate(expr.operand))
        if isinstance(expr, ast.FuncCall):
            return self._evaluate_call(expr)
        raise SAQLExecutionError(
            f"cannot evaluate expression of type {type(expr).__name__}")

    def evaluate_truthy(self, expr: ast.Expression) -> bool:
        """Evaluate ``expr`` and coerce the result to a boolean."""
        return values.is_truthy(self.evaluate(expr))

    # -- operator handling -------------------------------------------------

    def _evaluate_unary(self, expr: ast.UnaryOp) -> Any:
        operand = self.evaluate(expr.operand)
        if expr.op == "!":
            return not values.is_truthy(operand)
        if expr.op == "-":
            return -values.to_number(operand)
        raise SAQLExecutionError(f"unknown unary operator {expr.op!r}")

    def _evaluate_binary(self, expr: ast.BinaryOp) -> Any:
        op = expr.op

        # Short-circuiting boolean connectives.
        if op == "&&":
            if not self.evaluate_truthy(expr.left):
                return False
            return values.is_truthy(self.evaluate(expr.right))
        if op == "||":
            if self.evaluate_truthy(expr.left):
                return True
            return values.is_truthy(self.evaluate(expr.right))

        left = self.evaluate(expr.left)
        right = self.evaluate(expr.right)

        if op in (">", ">=", "<", "<=", "==", "=", "!="):
            return values.compare_values(op, left, right)
        if op == "in":
            return left in values.as_set(right)
        if op == "union":
            return values.set_union(left, right)
        if op == "diff":
            return values.set_diff(left, right)
        if op == "intersect":
            return values.set_intersect(left, right)

        left_num = values.to_number(left)
        right_num = values.to_number(right)
        if op == "+":
            return left_num + right_num
        if op == "-":
            return left_num - right_num
        if op == "*":
            return left_num * right_num
        if op == "/":
            if right_num == 0:
                return 0.0
            return left_num / right_num
        if op == "%":
            if right_num == 0:
                return 0.0
            return left_num % right_num
        raise SAQLExecutionError(f"unknown binary operator {op!r}")

    def _evaluate_call(self, call: ast.FuncCall) -> Any:
        name = call.name.lower()
        if functions.is_aggregation(name):
            return self._context.evaluate_aggregation(call)
        scalar = functions.SCALARS.get(name)
        if scalar is not None:
            args = [self.evaluate(arg) for arg in call.args]
            return scalar(*args)
        if name == "all":
            # ``all(...)`` is only meaningful inside a cluster statement,
            # where the cluster evaluator interprets it; evaluating it as a
            # plain expression returns the single argument's value.
            if len(call.args) != 1:
                raise SAQLExecutionError("all() takes exactly one argument")
            return self.evaluate(call.args[0])
        raise SAQLExecutionError(f"unknown function {call.name!r}")
