"""Aggregation and scalar functions available to SAQL queries.

Aggregations are used inside state definitions (``avg(evt.amount)``) and
reduce the per-event values of one sliding-window group to a single value.
Scalar functions (``abs``, ``sqrt``, ``len``) operate on already-computed
values inside alert conditions and return items.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, List, Sequence

from repro.core.errors import SAQLExecutionError
from repro.core.expr.values import to_number


def _numeric(values: Sequence[Any]) -> List[float]:
    return [to_number(value) for value in values if value is not None]


def agg_avg(values: Sequence[Any]) -> float:
    """Arithmetic mean of the non-missing values (0 when empty)."""
    nums = _numeric(values)
    if not nums:
        return 0.0
    return sum(nums) / len(nums)


def agg_sum(values: Sequence[Any]) -> float:
    """Sum of the non-missing values."""
    return float(sum(_numeric(values)))


def agg_count(values: Sequence[Any]) -> int:
    """Number of non-missing values."""
    return sum(1 for value in values if value is not None)


def agg_min(values: Sequence[Any]) -> float:
    """Minimum of the non-missing values (0 when empty)."""
    nums = _numeric(values)
    return min(nums) if nums else 0.0


def agg_max(values: Sequence[Any]) -> float:
    """Maximum of the non-missing values (0 when empty)."""
    nums = _numeric(values)
    return max(nums) if nums else 0.0


def agg_set(values: Sequence[Any]) -> frozenset:
    """The distinct set of non-missing values (the paper's ``set()``)."""
    return frozenset(value for value in values if value is not None)


def agg_distinct_count(values: Sequence[Any]) -> int:
    """Number of distinct non-missing values."""
    return len(agg_set(values))


def agg_stddev(values: Sequence[Any]) -> float:
    """Population standard deviation (0 for fewer than two values)."""
    nums = _numeric(values)
    if len(nums) < 2:
        return 0.0
    mean = sum(nums) / len(nums)
    variance = sum((value - mean) ** 2 for value in nums) / len(nums)
    return math.sqrt(variance)


def agg_median(values: Sequence[Any]) -> float:
    """Median of the non-missing values (0 when empty)."""
    nums = sorted(_numeric(values))
    if not nums:
        return 0.0
    mid = len(nums) // 2
    if len(nums) % 2 == 1:
        return nums[mid]
    return (nums[mid - 1] + nums[mid]) / 2.0


def agg_first(values: Sequence[Any]) -> Any:
    """First non-missing value in event order (None when empty)."""
    for value in values:
        if value is not None:
            return value
    return None


def agg_last(values: Sequence[Any]) -> Any:
    """Last non-missing value in event order (None when empty)."""
    result = None
    for value in values:
        if value is not None:
            result = value
    return result


def agg_percentile(values: Sequence[Any], percentile: float = 95.0) -> float:
    """The given percentile (nearest-rank) of the non-missing values."""
    nums = sorted(_numeric(values))
    if not nums:
        return 0.0
    fraction = min(max(percentile, 0.0), 100.0) / 100.0
    rank = max(int(math.ceil(fraction * len(nums))) - 1, 0)
    return nums[rank]


#: Aggregation registry: name -> reducer over a sequence of per-event values.
AGGREGATIONS: Dict[str, Callable[..., Any]] = {
    "avg": agg_avg,
    "sum": agg_sum,
    "count": agg_count,
    "min": agg_min,
    "max": agg_max,
    "set": agg_set,
    "distinct_count": agg_distinct_count,
    "stddev": agg_stddev,
    "median": agg_median,
    "first": agg_first,
    "last": agg_last,
    "percentile": agg_percentile,
}


def scalar_abs(value: Any) -> float:
    """Absolute value."""
    return abs(to_number(value))


def scalar_sqrt(value: Any) -> float:
    """Square root (of the numeric coercion)."""
    number = to_number(value)
    if number < 0:
        raise SAQLExecutionError(f"sqrt of negative value {number}")
    return math.sqrt(number)


def scalar_len(value: Any) -> float:
    """Collection length / string length."""
    if value is None:
        return 0.0
    if isinstance(value, (set, frozenset, list, tuple, dict, str)):
        return float(len(value))
    return 1.0


#: Scalar function registry.
SCALARS: Dict[str, Callable[..., Any]] = {
    "abs": scalar_abs,
    "sqrt": scalar_sqrt,
    "len": scalar_len,
}


def is_aggregation(name: str) -> bool:
    """Return True when ``name`` is a registered aggregation function."""
    return name.lower() in AGGREGATIONS


def aggregate(name: str, values: Sequence[Any], *extra_args: float) -> Any:
    """Apply the named aggregation to a sequence of per-event values.

    ``extra_args`` carries literal parameters such as the percentile rank in
    ``percentile(evt.amount, 99)``.

    Raises:
        SAQLExecutionError: if the aggregation name is unknown.
    """
    func = AGGREGATIONS.get(name.lower())
    if func is None:
        raise SAQLExecutionError(f"unknown aggregation function {name!r}")
    if extra_args:
        return func(values, *extra_args)
    return func(values)
