"""Expression evaluation for SAQL queries.

This package turns the expression AST into values at query-execution time.
It is split into:

* :mod:`repro.core.expr.values` — runtime value helpers (truthiness, sets,
  SQL-LIKE wildcard matching, comparison semantics);
* :mod:`repro.core.expr.functions` — the aggregation- and scalar-function
  registry (``avg``, ``sum``, ``set``, ``percentile``, ...);
* :mod:`repro.core.expr.evaluator` — the expression evaluator and the
  evaluation-context protocol the engine implements.
"""

from repro.core.expr.evaluator import EvaluationContext, ExpressionEvaluator
from repro.core.expr.functions import (
    AGGREGATIONS,
    SCALARS,
    aggregate,
    is_aggregation,
)
from repro.core.expr.values import (
    is_truthy,
    like_match,
    compare_values,
    to_number,
)

__all__ = [
    "AGGREGATIONS",
    "EvaluationContext",
    "ExpressionEvaluator",
    "SCALARS",
    "aggregate",
    "compare_values",
    "is_aggregation",
    "is_truthy",
    "like_match",
    "to_number",
]
