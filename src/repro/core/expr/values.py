"""Runtime value semantics for SAQL expressions.

SAQL expressions operate over a small set of value kinds: numbers, strings,
booleans, sets (from the ``set()`` aggregation and set operators), and the
engine's structured views (window states, entities, events, cluster
results).  This module defines the scalar semantics — truthiness,
comparison, numeric coercion and the SQL-LIKE ``%`` wildcard matching used
by entity attribute constraints such as ``proc p1["%cmd.exe"]``.
"""

from __future__ import annotations

import re
from functools import lru_cache
from typing import Any, Optional, Pattern


def is_truthy(value: Any) -> bool:
    """Return the boolean interpretation of an expression value.

    ``None`` (missing attribute), empty sets/strings, zero and ``False``
    are all false; everything else is true.
    """
    if value is None:
        return False
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)):
        return value != 0
    if isinstance(value, (str, set, frozenset, list, tuple, dict)):
        return len(value) > 0
    return True


def to_number(value: Any, default: float = 0.0) -> float:
    """Coerce a value to a float for arithmetic; ``default`` when impossible."""
    if value is None:
        return default
    if isinstance(value, bool):
        return 1.0 if value else 0.0
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, str):
        try:
            return float(value)
        except ValueError:
            return default
    if isinstance(value, (set, frozenset, list, tuple)):
        return float(len(value))
    return default


@lru_cache(maxsize=4096)
def _compile_like(pattern: str) -> Pattern[str]:
    """Compile a SQL-LIKE pattern to a regex, cached per pattern text.

    LIKE patterns come from query text, so the working set is small and the
    cache turns per-event regex construction into a dictionary hit.
    """
    regex_parts = []
    for char in pattern:
        if char == "%":
            regex_parts.append(".*")
        elif char == "_":
            regex_parts.append(".")
        else:
            regex_parts.append(re.escape(char))
    regex = "^" + "".join(regex_parts) + "$"
    return re.compile(regex, flags=re.IGNORECASE)


def like_match(value: Any, pattern: str) -> bool:
    """SQL-LIKE matching with ``%`` (any run) and ``_`` (single character).

    Matching is case-insensitive, mirroring how executable names and file
    paths are matched in the paper's example queries.
    """
    if value is None:
        return False
    return _compile_like(pattern).match(str(value)) is not None


def compare_values(op: str, left: Any, right: Any) -> bool:
    """Evaluate a comparison operator with SAQL's mixed-type semantics.

    Strings compare as strings for (in)equality and support LIKE wildcards
    when the right operand contains ``%``; everything else is compared
    numerically.  Missing values (``None``) only satisfy ``!=`` against a
    non-missing operand.
    """
    if op in ("==", "=", "!="):
        equal = _values_equal(left, right)
        return equal if op in ("==", "=") else not equal

    if left is None or right is None:
        return False

    left_num = to_number(left, default=float("nan"))
    right_num = to_number(right, default=float("nan"))
    if left_num != left_num or right_num != right_num:  # NaN check
        # Fall back to string ordering when either side is non-numeric.
        left_num, right_num = str(left), str(right)  # type: ignore[assignment]
    if op == ">":
        return left_num > right_num
    if op == ">=":
        return left_num >= right_num
    if op == "<":
        return left_num < right_num
    if op == "<=":
        return left_num <= right_num
    raise ValueError(f"unknown comparison operator {op!r}")


def _values_equal(left: Any, right: Any) -> bool:
    if left is None and right is None:
        return True
    if left is None or right is None:
        return False
    if isinstance(left, str) or isinstance(right, str):
        left_text, right_text = str(left), str(right)
        if "%" in right_text or "_" in right_text:
            return like_match(left_text, right_text)
        if "%" in left_text or "_" in left_text:
            return like_match(right_text, left_text)
        # Numeric strings still compare numerically ("5" == 5).
        try:
            return float(left_text) == float(right_text)
        except ValueError:
            return left_text.lower() == right_text.lower()
    if isinstance(left, (set, frozenset)) or isinstance(right, (set, frozenset)):
        return set(left) == set(right)
    return left == right


def as_set(value: Any) -> frozenset:
    """Coerce a value to a frozenset for the set operators."""
    if value is None:
        return frozenset()
    if isinstance(value, (set, frozenset)):
        return frozenset(value)
    if isinstance(value, (list, tuple)):
        return frozenset(value)
    return frozenset({value})


def set_union(left: Any, right: Any) -> frozenset:
    """The ``union`` operator."""
    return as_set(left) | as_set(right)


def set_diff(left: Any, right: Any) -> frozenset:
    """The ``diff`` operator (elements of ``left`` not in ``right``)."""
    return as_set(left) - as_set(right)


def set_intersect(left: Any, right: Any) -> frozenset:
    """The ``intersect`` operator."""
    return as_set(left) & as_set(right)


def size_of(value: Any) -> float:
    """The ``|expr|`` construct: collection size or numeric absolute value."""
    if value is None:
        return 0.0
    if isinstance(value, (set, frozenset, list, tuple, dict, str)):
        return float(len(value))
    return abs(to_number(value))
