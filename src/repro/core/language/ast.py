"""Abstract syntax tree for SAQL queries.

A parsed query is a :class:`Query` holding the clauses the language
supports (Section II-B of the paper):

* global constraints (``agentid = xxx``);
* one or more event patterns, each an SVO pattern with optional attribute
  constraints and an alias (``proc p1["%cmd.exe"] start proc p2 as evt1``);
* an optional sliding-window specification (``#time(10 min)``);
* an optional temporal order over pattern aliases (``with evt1 -> evt2``);
* an optional state block with aggregations and grouping;
* an optional invariant block (training window count, offline/online mode,
  init and update statements);
* an optional cluster statement (points, distance, method);
* an optional alert condition;
* a return clause.

Expression nodes form a small, conventional hierarchy used by the state
definitions, the invariant statements, the alert condition and the return
items.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------

class Expression:
    """Base class for SAQL expressions."""

    def children(self) -> Sequence["Expression"]:
        """Return the direct sub-expressions (for generic tree walks)."""
        return ()


@dataclass(frozen=True)
class Literal(Expression):
    """A number or string literal."""

    value: Any


@dataclass(frozen=True)
class Identifier(Expression):
    """A bare name: entity variable, state name, ``cluster``, etc."""

    name: str


@dataclass(frozen=True)
class EmptySet(Expression):
    """The ``empty_set`` invariant-initialization literal."""


@dataclass(frozen=True)
class AttributeRef(Expression):
    """Attribute access: ``base.attr`` (e.g. ``evt.amount``, ``p1.exe_name``)."""

    base: Expression
    attr: str

    def children(self) -> Sequence[Expression]:
        return (self.base,)


@dataclass(frozen=True)
class IndexRef(Expression):
    """Index access: ``base[index]`` (e.g. ``ss[0]`` for window history)."""

    base: Expression
    index: Expression

    def children(self) -> Sequence[Expression]:
        return (self.base, self.index)


@dataclass(frozen=True)
class UnaryOp(Expression):
    """Unary operation: logical not (``!``) or numeric negation (``-``)."""

    op: str
    operand: Expression

    def children(self) -> Sequence[Expression]:
        return (self.operand,)


@dataclass(frozen=True)
class BinaryOp(Expression):
    """Binary operation.

    ``op`` is one of the arithmetic operators (``+ - * / %``), comparisons
    (``> >= < <= == !=``, with ``=`` treated as equality), boolean
    connectives (``&& ||``), set operators (``union``, ``diff``,
    ``intersect``) or membership (``in``).
    """

    op: str
    left: Expression
    right: Expression

    def children(self) -> Sequence[Expression]:
        return (self.left, self.right)


@dataclass(frozen=True)
class SizeOf(Expression):
    """The ``|expr|`` construct: set cardinality or numeric absolute value."""

    operand: Expression

    def children(self) -> Sequence[Expression]:
        return (self.operand,)


@dataclass(frozen=True)
class FuncCall(Expression):
    """A function or aggregation call, e.g. ``avg(evt.amount)``, ``all(ss.amt)``."""

    name: str
    args: Tuple[Expression, ...] = ()
    kwargs: Tuple[Tuple[str, Expression], ...] = ()

    def children(self) -> Sequence[Expression]:
        return tuple(self.args) + tuple(expr for _, expr in self.kwargs)


# ---------------------------------------------------------------------------
# Query clauses
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class AttributeConstraint:
    """A constraint inside an entity declaration's brackets.

    ``attr`` is ``None`` for the shorthand pattern form
    (``proc p1["%cmd.exe"]`` constrains the entity's *default* attribute).
    ``op`` is a comparison operator; string values containing ``%`` are
    matched as SQL-LIKE wildcards.
    """

    attr: Optional[str]
    op: str
    value: Any


@dataclass(frozen=True)
class EntityDeclaration:
    """An entity occurrence in an event pattern, e.g. ``proc p1["%cmd.exe"]``."""

    entity_type: str          # "proc" | "file" | "ip"
    variable: str
    constraints: Tuple[AttributeConstraint, ...] = ()


@dataclass(frozen=True)
class WindowSpec:
    """A sliding-window specification attached to an event pattern.

    ``kind`` is ``"time"`` (length in seconds) or ``"count"`` (number of
    events).  Windows are tumbling by default, matching the paper's
    per-window state computation; a hop smaller than the length produces
    an overlapping sliding window.
    """

    kind: str
    length: float
    hop: Optional[float] = None

    @property
    def effective_hop(self) -> float:
        """Return the hop (defaults to the window length: tumbling)."""
        return self.hop if self.hop is not None else self.length


@dataclass(frozen=True)
class EventPatternDeclaration:
    """One SVO event pattern with alias.

    ``operations`` holds one or more operation keywords joined by ``||``
    in the query text (``read || write``).
    """

    subject: EntityDeclaration
    operations: Tuple[str, ...]
    object: EntityDeclaration
    alias: str
    window: Optional[WindowSpec] = None


@dataclass(frozen=True)
class GlobalConstraint:
    """A query-wide event attribute constraint, e.g. ``agentid = "server-db"``."""

    attr: str
    op: str
    value: Any


@dataclass(frozen=True)
class TemporalOrder:
    """The ``with evt1 -> evt2 -> ...`` clause."""

    aliases: Tuple[str, ...]


@dataclass(frozen=True)
class StateDefinition:
    """One aggregation definition inside a state block: ``name := expr``."""

    name: str
    expr: Expression


@dataclass(frozen=True)
class StateBlock:
    """The ``state[k] ss { ... } group by ...`` clause.

    ``history`` is the number of windows kept (``state`` alone keeps 1,
    ``state[3]`` keeps the current window plus two past ones).
    """

    name: str
    history: int
    definitions: Tuple[StateDefinition, ...]
    group_by: Tuple[Expression, ...] = ()


@dataclass(frozen=True)
class InvariantStatement:
    """One statement inside an invariant block.

    ``is_init`` distinguishes the ``a := empty_set`` initialization from the
    ``a = a union ss.set_proc`` per-window update.
    """

    name: str
    expr: Expression
    is_init: bool


@dataclass(frozen=True)
class InvariantBlock:
    """The ``invariant[k][offline|online] { ... }`` clause."""

    training_windows: int
    mode: str
    statements: Tuple[InvariantStatement, ...]

    @property
    def init_statements(self) -> Tuple[InvariantStatement, ...]:
        """Return the initialization statements, in declaration order."""
        return tuple(stmt for stmt in self.statements if stmt.is_init)

    @property
    def update_statements(self) -> Tuple[InvariantStatement, ...]:
        """Return the per-window update statements, in declaration order."""
        return tuple(stmt for stmt in self.statements if not stmt.is_init)


@dataclass(frozen=True)
class ClusterSpec:
    """The ``cluster(points=..., distance=..., method=...)`` clause.

    ``method`` carries the clustering algorithm name and its parameters,
    e.g. ``DBSCAN(100000, 5)`` becomes ``("DBSCAN", (100000.0, 5.0))``.
    """

    points: Expression
    distance: str
    method: str
    method_args: Tuple[float, ...] = ()


@dataclass(frozen=True)
class AlertClause:
    """The ``alert <condition>`` clause."""

    condition: Expression


@dataclass(frozen=True)
class ReturnItem:
    """One projected item of the return clause, with an optional alias."""

    expr: Expression
    alias: Optional[str] = None


@dataclass(frozen=True)
class ReturnClause:
    """The ``return [distinct] item, item, ...`` clause."""

    items: Tuple[ReturnItem, ...]
    distinct: bool = False


@dataclass
class Query:
    """A complete SAQL query.

    Built by the parser, then checked and annotated by the analyzer (which
    fills :attr:`entity_variables` and :attr:`pattern_aliases`).
    """

    global_constraints: List[GlobalConstraint] = field(default_factory=list)
    patterns: List[EventPatternDeclaration] = field(default_factory=list)
    temporal_order: Optional[TemporalOrder] = None
    state: Optional[StateBlock] = None
    invariant: Optional[InvariantBlock] = None
    cluster: Optional[ClusterSpec] = None
    alert: Optional[AlertClause] = None
    returns: Optional[ReturnClause] = None
    name: str = ""
    source_text: str = ""

    # Filled by the analyzer.
    entity_variables: Dict[str, EntityDeclaration] = field(default_factory=dict)
    pattern_aliases: Dict[str, EventPatternDeclaration] = field(default_factory=dict)

    @property
    def window(self) -> Optional[WindowSpec]:
        """Return the query's window specification (from any pattern)."""
        for pattern in self.patterns:
            if pattern.window is not None:
                return pattern.window
        return None

    @property
    def is_stateful(self) -> bool:
        """Return True when the query needs per-window state computation."""
        return self.state is not None

    @property
    def model_kind(self) -> str:
        """Classify the query into the paper's four anomaly-model types."""
        if self.cluster is not None:
            return "outlier"
        if self.invariant is not None:
            return "invariant"
        if self.state is not None:
            return "time-series"
        return "rule"


def walk_expression(expr: Expression):
    """Yield ``expr`` and all of its sub-expressions, pre-order."""
    yield expr
    for child in expr.children():
        yield from walk_expression(child)
