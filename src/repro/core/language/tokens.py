"""Tokenizer for the SAQL query language.

The paper builds its grammar with ANTLR 4; since this reproduction cannot
pull in external parser generators, the lexer is hand written.  It produces
a flat token list consumed by the recursive-descent parser.

Lexical conventions (taken from Queries 1-4 of the paper):

* ``//`` starts a comment that runs to the end of the line;
* string literals use double quotes and may contain ``%`` wildcards;
* ``||`` is both the operation alternation ("read || write") and boolean
  OR — the parser disambiguates by context;
* ``->`` is the temporal-order arrow; ``:=`` is state/invariant
  initialization; ``#`` introduces a window specification;
* identifiers may contain letters, digits, underscores and dots are NOT
  part of identifiers (attribute access is a separate ``.`` token).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, List, Optional

from repro.core.errors import SAQLParseError


class TokenType(enum.Enum):
    """Lexical categories produced by the tokenizer."""

    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"

    # punctuation / operators
    LPAREN = "("
    RPAREN = ")"
    LBRACKET = "["
    RBRACKET = "]"
    LBRACE = "{"
    RBRACE = "}"
    COMMA = ","
    DOT = "."
    HASH = "#"
    PIPE = "|"
    OROR = "||"
    ANDAND = "&&"
    NOT = "!"
    ARROW = "->"
    ASSIGN = ":="
    EQ = "="
    EQEQ = "=="
    NEQ = "!="
    LT = "<"
    LTE = "<="
    GT = ">"
    GTE = ">="
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    PERCENT = "%"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position (1-based)."""

    type: TokenType
    value: str
    line: int
    column: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.type.name}, {self.value!r}, {self.line}:{self.column})"


#: Keywords are scanned as IDENT tokens; the parser gives them meaning in
#: context.  Listed here for reference and for the formatter/analyzer.
KEYWORDS = frozenset({
    "proc", "file", "ip",
    "start", "end", "read", "write", "execute", "delete", "rename",
    "connect", "accept", "send", "recv",
    "as", "with", "state", "group", "by", "invariant", "offline", "online",
    "cluster", "alert", "return", "distinct", "union", "diff", "intersect",
    "in", "empty_set", "time", "count",
})

_TWO_CHAR_TOKENS = {
    "||": TokenType.OROR,
    "&&": TokenType.ANDAND,
    "->": TokenType.ARROW,
    ":=": TokenType.ASSIGN,
    "==": TokenType.EQEQ,
    "!=": TokenType.NEQ,
    "<=": TokenType.LTE,
    ">=": TokenType.GTE,
}

_ONE_CHAR_TOKENS = {
    "(": TokenType.LPAREN,
    ")": TokenType.RPAREN,
    "[": TokenType.LBRACKET,
    "]": TokenType.RBRACKET,
    "{": TokenType.LBRACE,
    "}": TokenType.RBRACE,
    ",": TokenType.COMMA,
    ".": TokenType.DOT,
    "#": TokenType.HASH,
    "|": TokenType.PIPE,
    "!": TokenType.NOT,
    "=": TokenType.EQ,
    "<": TokenType.LT,
    ">": TokenType.GT,
    "+": TokenType.PLUS,
    "-": TokenType.MINUS,
    "*": TokenType.STAR,
    "/": TokenType.SLASH,
    "%": TokenType.PERCENT,
}


class Tokenizer:
    """Converts SAQL query text into a list of :class:`Token` objects."""

    def __init__(self, text: str):
        self._text = text
        self._pos = 0
        self._line = 1
        self._column = 1

    def tokenize(self) -> List[Token]:
        """Scan the whole input and return the token list (EOF-terminated)."""
        tokens: List[Token] = []
        while True:
            token = self._next_token()
            tokens.append(token)
            if token.type is TokenType.EOF:
                return tokens

    # -- scanning helpers -------------------------------------------------

    def _peek(self, offset: int = 0) -> str:
        index = self._pos + offset
        if index >= len(self._text):
            return ""
        return self._text[index]

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self._pos >= len(self._text):
                return
            if self._text[self._pos] == "\n":
                self._line += 1
                self._column = 1
            else:
                self._column += 1
            self._pos += 1

    def _skip_whitespace_and_comments(self) -> None:
        while self._pos < len(self._text):
            char = self._peek()
            if char in " \t\r\n":
                self._advance()
            elif char == "/" and self._peek(1) == "/":
                while self._pos < len(self._text) and self._peek() != "\n":
                    self._advance()
            else:
                return

    def _next_token(self) -> Token:
        self._skip_whitespace_and_comments()
        line, column = self._line, self._column
        if self._pos >= len(self._text):
            return Token(TokenType.EOF, "", line, column)

        char = self._peek()

        # String literal.
        if char == '"':
            return self._scan_string(line, column)

        # Number literal.
        if char.isdigit():
            return self._scan_number(line, column)

        # Identifier / keyword.
        if char.isalpha() or char == "_":
            return self._scan_identifier(line, column)

        # Two-character operators first.
        two = self._text[self._pos:self._pos + 2]
        if two in _TWO_CHAR_TOKENS:
            self._advance(2)
            return Token(_TWO_CHAR_TOKENS[two], two, line, column)

        if char in _ONE_CHAR_TOKENS:
            self._advance()
            return Token(_ONE_CHAR_TOKENS[char], char, line, column)

        raise SAQLParseError(f"unexpected character {char!r}", line, column)

    def _scan_string(self, line: int, column: int) -> Token:
        self._advance()  # opening quote
        chars: List[str] = []
        while True:
            if self._pos >= len(self._text):
                raise SAQLParseError("unterminated string literal",
                                     line, column)
            char = self._peek()
            if char == '"':
                self._advance()
                return Token(TokenType.STRING, "".join(chars), line, column)
            if char == "\\" and self._peek(1) in ('"', "\\"):
                chars.append(self._peek(1))
                self._advance(2)
                continue
            if char == "\n":
                raise SAQLParseError("newline inside string literal",
                                     line, column)
            chars.append(char)
            self._advance()

    def _scan_number(self, line: int, column: int) -> Token:
        start = self._pos
        saw_dot = False
        while self._pos < len(self._text):
            char = self._peek()
            if char.isdigit():
                self._advance()
            elif char == "." and not saw_dot and self._peek(1).isdigit():
                saw_dot = True
                self._advance()
            else:
                break
        value = self._text[start:self._pos]
        return Token(TokenType.NUMBER, value, line, column)

    def _scan_identifier(self, line: int, column: int) -> Token:
        start = self._pos
        while self._pos < len(self._text):
            char = self._peek()
            if char.isalnum() or char == "_":
                self._advance()
            else:
                break
        value = self._text[start:self._pos]
        return Token(TokenType.IDENT, value, line, column)


def tokenize(text: str) -> List[Token]:
    """Tokenize SAQL query text into a list of tokens."""
    return Tokenizer(text).tokenize()
