"""Pretty-printer that renders a parsed query back to SAQL text.

Used by the CLI (to echo normalized queries) and by round-trip tests that
check parse → format → parse stability.
"""

from __future__ import annotations

from typing import List

from repro.core.language import ast


def format_expression(expr: ast.Expression) -> str:
    """Render an expression to SAQL source text."""
    if isinstance(expr, ast.Literal):
        if isinstance(expr.value, str):
            return f'"{expr.value}"'
        return _format_number(expr.value)
    if isinstance(expr, ast.Identifier):
        return expr.name
    if isinstance(expr, ast.EmptySet):
        return "empty_set"
    if isinstance(expr, ast.AttributeRef):
        return f"{format_expression(expr.base)}.{expr.attr}"
    if isinstance(expr, ast.IndexRef):
        return (f"{format_expression(expr.base)}"
                f"[{format_expression(expr.index)}]")
    if isinstance(expr, ast.UnaryOp):
        return f"{expr.op}{format_expression(expr.operand)}"
    if isinstance(expr, ast.BinaryOp):
        left = format_expression(expr.left)
        right = format_expression(expr.right)
        if _needs_parens(expr.left, expr.op):
            left = f"({left})"
        if _needs_parens(expr.right, expr.op):
            right = f"({right})"
        return f"{left} {expr.op} {right}"
    if isinstance(expr, ast.SizeOf):
        return f"|{format_expression(expr.operand)}|"
    if isinstance(expr, ast.FuncCall):
        pieces = [format_expression(arg) for arg in expr.args]
        pieces.extend(f"{key}={format_expression(value)}"
                      for key, value in expr.kwargs)
        return f"{expr.name}({', '.join(pieces)})"
    raise TypeError(f"cannot format expression of type {type(expr).__name__}")


_PRECEDENCE = {
    "||": 1, "&&": 2,
    ">": 3, ">=": 3, "<": 3, "<=": 3, "==": 3, "!=": 3, "in": 3,
    "union": 4, "diff": 4, "intersect": 4,
    "+": 5, "-": 5,
    "*": 6, "/": 6, "%": 6,
}


def _needs_parens(child: ast.Expression, parent_op: str) -> bool:
    if not isinstance(child, ast.BinaryOp):
        return False
    child_prec = _PRECEDENCE.get(child.op, 7)
    parent_prec = _PRECEDENCE.get(parent_op, 7)
    return child_prec < parent_prec


def _format_number(value) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)


def _format_constraint(constraint: ast.AttributeConstraint) -> str:
    if constraint.attr is None:
        if isinstance(constraint.value, str):
            return f'"{constraint.value}"'
        return _format_number(constraint.value)
    value = (f'"{constraint.value}"' if isinstance(constraint.value, str)
             else _format_number(constraint.value))
    op = "=" if constraint.op in ("==", "like") else constraint.op
    return f"{constraint.attr}{op}{value}"


def _format_entity(decl: ast.EntityDeclaration) -> str:
    text = f"{decl.entity_type} {decl.variable}"
    if decl.constraints:
        inner = ", ".join(_format_constraint(c) for c in decl.constraints)
        text += f"[{inner}]"
    return text


def _format_window(window: ast.WindowSpec) -> str:
    if window.kind == "count":
        return f"#count({int(window.length)})"
    length, unit = _humanize_seconds(window.length)
    if window.hop is not None:
        hop_length, hop_unit = _humanize_seconds(window.hop)
        return f"#time({length} {unit}, {hop_length} {hop_unit})"
    return f"#time({length} {unit})"


def _humanize_seconds(seconds: float):
    if seconds % 3600 == 0 and seconds >= 3600:
        return int(seconds // 3600), "h"
    if seconds % 60 == 0 and seconds >= 60:
        return int(seconds // 60), "min"
    if seconds >= 1 and float(seconds).is_integer():
        return int(seconds), "s"
    return seconds, "s"


def format_query(query: ast.Query) -> str:
    """Render a parsed query back to (normalized) SAQL text."""
    lines: List[str] = []
    for constraint in query.global_constraints:
        value = (f'"{constraint.value}"'
                 if isinstance(constraint.value, str) else
                 _format_number(constraint.value))
        op = "=" if constraint.op == "==" else constraint.op
        lines.append(f"{constraint.attr} {op} {value}")

    for pattern in query.patterns:
        ops = " || ".join(pattern.operations)
        line = (f"{_format_entity(pattern.subject)} {ops} "
                f"{_format_entity(pattern.object)} as {pattern.alias}")
        if pattern.window is not None:
            line += f" {_format_window(pattern.window)}"
        lines.append(line)

    if query.temporal_order is not None:
        lines.append("with " + " -> ".join(query.temporal_order.aliases))

    if query.state is not None:
        state = query.state
        header = "state"
        if state.history > 1:
            header += f"[{state.history}]"
        lines.append(f"{header} {state.name} {{")
        for definition in state.definitions:
            lines.append(
                f"  {definition.name} := {format_expression(definition.expr)}")
        closing = "}"
        if state.group_by:
            keys = ", ".join(format_expression(key) for key in state.group_by)
            closing += f" group by {keys}"
        lines.append(closing)

    if query.invariant is not None:
        invariant = query.invariant
        lines.append(
            f"invariant[{invariant.training_windows}][{invariant.mode}] {{")
        for stmt in invariant.statements:
            op = ":=" if stmt.is_init else "="
            lines.append(f"  {stmt.name} {op} {format_expression(stmt.expr)}")
        lines.append("}")

    if query.cluster is not None:
        cluster = query.cluster
        method = cluster.method
        if cluster.method_args:
            args = ", ".join(_format_number(arg)
                             for arg in cluster.method_args)
            method += f"({args})"
        lines.append(
            f'cluster(points={format_expression(cluster.points)}, '
            f'distance="{cluster.distance}", method="{method}")')

    if query.alert is not None:
        lines.append(f"alert {format_expression(query.alert.condition)}")

    if query.returns is not None:
        pieces = []
        for item in query.returns.items:
            text = format_expression(item.expr)
            if item.alias:
                text += f" as {item.alias}"
            pieces.append(text)
        prefix = "return distinct " if query.returns.distinct else "return "
        lines.append(prefix + ", ".join(pieces))

    return "\n".join(lines)
