"""Semantic analysis of parsed SAQL queries.

The analyzer checks the consistency rules that the grammar alone cannot
express and annotates the query with the symbol tables the engine needs:

* every entity variable is declared once per type (a repeated variable, such
  as ``f1`` appearing in two patterns of Query 1, implicitly constrains both
  patterns to bind the *same* entity);
* pattern aliases are unique, and the temporal order references only
  declared aliases;
* stateful constructs (state / invariant / cluster) require a sliding
  window, and the invariant and cluster clauses require a state block;
* the window-history index ``ss[k]`` never exceeds the declared history;
* expressions only reference known names (entity variables, pattern aliases,
  the state name, invariant variables, and the special ``cluster`` symbol);
* a return clause is present.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

from repro.core.errors import SAQLSemanticError
from repro.core.language import ast

#: Names that are always resolvable inside expressions.
_BUILTIN_NAMES = frozenset({"cluster", "evt"})

#: Aggregation functions accepted in state definitions.
AGGREGATION_FUNCTIONS = frozenset({
    "avg", "sum", "count", "min", "max", "set", "distinct_count",
    "stddev", "median", "first", "last", "percentile",
})

#: Functions accepted anywhere in expressions.
SCALAR_FUNCTIONS = frozenset({"abs", "sqrt", "len", "all"})


class QueryAnalyzer:
    """Checks and annotates one parsed query."""

    def __init__(self, query: ast.Query):
        self._query = query

    def analyze(self) -> ast.Query:
        """Run all checks; returns the annotated query.

        Raises:
            SAQLSemanticError: on the first inconsistency found.
        """
        query = self._query
        self._collect_entities_and_aliases()
        self._check_temporal_order()
        self._check_window_requirements()
        self._check_state_block()
        self._check_invariant_block()
        self._check_cluster()
        self._check_alert()
        self._check_returns()
        return query

    # -- individual checks ---------------------------------------------------

    def _collect_entities_and_aliases(self) -> None:
        query = self._query
        entity_variables: Dict[str, ast.EntityDeclaration] = {}
        pattern_aliases: Dict[str, ast.EventPatternDeclaration] = {}

        for pattern in query.patterns:
            for decl in (pattern.subject, pattern.object):
                existing = entity_variables.get(decl.variable)
                if existing is None:
                    entity_variables[decl.variable] = decl
                elif existing.entity_type != decl.entity_type:
                    raise SAQLSemanticError(
                        f"entity variable {decl.variable!r} redeclared with a "
                        f"different type ({existing.entity_type} vs "
                        f"{decl.entity_type})")
            if pattern.alias in pattern_aliases:
                raise SAQLSemanticError(
                    f"duplicate event pattern alias {pattern.alias!r}")
            pattern_aliases[pattern.alias] = pattern

        query.entity_variables = entity_variables
        query.pattern_aliases = pattern_aliases

    def _check_temporal_order(self) -> None:
        query = self._query
        if query.temporal_order is None:
            return
        for alias in query.temporal_order.aliases:
            if alias not in query.pattern_aliases:
                raise SAQLSemanticError(
                    f"temporal order references unknown alias {alias!r}")

    def _check_window_requirements(self) -> None:
        query = self._query
        needs_window = (query.state is not None
                        or query.invariant is not None
                        or query.cluster is not None)
        if needs_window and query.window is None:
            raise SAQLSemanticError(
                "stateful queries require a window specification "
                "(e.g. '#time(10 min)') on an event pattern")

    def _check_state_block(self) -> None:
        query = self._query
        state = query.state
        if state is None:
            return
        seen: Set[str] = set()
        for definition in state.definitions:
            if definition.name in seen:
                raise SAQLSemanticError(
                    f"duplicate state field {definition.name!r}")
            seen.add(definition.name)
            self._check_expression(definition.expr,
                                   extra_names=frozenset(),
                                   allow_aggregations=True,
                                   context="state definition")
        for key in state.group_by:
            self._check_group_key(key)

    def _check_group_key(self, key: ast.Expression) -> None:
        query = self._query
        if isinstance(key, ast.Identifier):
            if (key.name not in query.entity_variables
                    and key.name not in query.pattern_aliases
                    and key.name not in _BUILTIN_NAMES):
                raise SAQLSemanticError(
                    f"group-by key references unknown name {key.name!r}")
            return
        if isinstance(key, ast.AttributeRef):
            self._check_group_key(key.base)
            return
        raise SAQLSemanticError(
            "group-by keys must be entity variables or attribute references")

    def _check_invariant_block(self) -> None:
        query = self._query
        invariant = query.invariant
        if invariant is None:
            return
        if query.state is None:
            raise SAQLSemanticError(
                "an invariant block requires a state block to draw values from")
        init_names = {stmt.name for stmt in invariant.init_statements}
        if not init_names:
            raise SAQLSemanticError(
                "invariant block has no initialization statement (':=')")
        for stmt in invariant.update_statements:
            if stmt.name not in init_names:
                raise SAQLSemanticError(
                    f"invariant update targets undeclared variable {stmt.name!r}")
            self._check_expression(stmt.expr,
                                   extra_names=frozenset(init_names),
                                   allow_aggregations=False,
                                   context="invariant update")

    def _check_cluster(self) -> None:
        query = self._query
        cluster = query.cluster
        if cluster is None:
            return
        if query.state is None:
            raise SAQLSemanticError(
                "a cluster statement requires a state block providing the points")
        self._check_expression(cluster.points,
                               extra_names=frozenset(),
                               allow_aggregations=False,
                               context="cluster points")
        if cluster.method.upper() not in ("DBSCAN", "KMEANS"):
            raise SAQLSemanticError(
                f"unsupported clustering method {cluster.method!r}")

    def _check_alert(self) -> None:
        query = self._query
        if query.alert is None:
            return
        extra = self._invariant_names()
        self._check_expression(query.alert.condition,
                               extra_names=extra,
                               allow_aggregations=False,
                               context="alert condition")
        self._check_state_history_indices(query.alert.condition)

    def _check_returns(self) -> None:
        query = self._query
        if query.returns is None:
            raise SAQLSemanticError("query has no return clause")
        extra = self._invariant_names()
        for item in query.returns.items:
            self._check_expression(item.expr,
                                   extra_names=extra,
                                   allow_aggregations=False,
                                   context="return item")
            self._check_state_history_indices(item.expr)

    # -- expression-level helpers ---------------------------------------------

    def _invariant_names(self) -> frozenset:
        invariant = self._query.invariant
        if invariant is None:
            return frozenset()
        return frozenset(stmt.name for stmt in invariant.init_statements)

    def _known_names(self, extra_names: frozenset) -> Set[str]:
        query = self._query
        names: Set[str] = set(_BUILTIN_NAMES)
        names.update(query.entity_variables)
        names.update(query.pattern_aliases)
        if query.state is not None:
            names.add(query.state.name)
        names.update(extra_names)
        return names

    def _check_expression(self, expr: ast.Expression, extra_names: frozenset,
                          allow_aggregations: bool, context: str) -> None:
        known = self._known_names(extra_names)
        for node in ast.walk_expression(expr):
            if isinstance(node, ast.Identifier):
                if node.name not in known:
                    raise SAQLSemanticError(
                        f"{context} references unknown name {node.name!r}")
            elif isinstance(node, ast.FuncCall):
                name = node.name.lower()
                if name in AGGREGATION_FUNCTIONS:
                    if not allow_aggregations and name != "all":
                        raise SAQLSemanticError(
                            f"aggregation {node.name!r} is only allowed in "
                            f"state definitions (found in {context})")
                elif name not in SCALAR_FUNCTIONS:
                    raise SAQLSemanticError(
                        f"{context} calls unknown function {node.name!r}")

    def _check_state_history_indices(self, expr: ast.Expression) -> None:
        query = self._query
        state = query.state
        if state is None:
            return
        for node in ast.walk_expression(expr):
            if not isinstance(node, ast.IndexRef):
                continue
            base = node.base
            if not (isinstance(base, ast.Identifier)
                    and base.name == state.name):
                continue
            index = node.index
            if isinstance(index, ast.Literal) and isinstance(index.value, int):
                if index.value < 0 or index.value >= state.history:
                    raise SAQLSemanticError(
                        f"state history index {index.value} out of range "
                        f"(history keeps {state.history} windows)")


def analyze_query(query: ast.Query) -> ast.Query:
    """Check and annotate a parsed query (see :class:`QueryAnalyzer`)."""
    return QueryAnalyzer(query).analyze()
