"""The SAQL query language front-end.

The language pipeline is::

    query text --tokenize--> tokens --parse--> AST --analyze--> checked Query

:func:`parse_query` runs the whole pipeline and is what applications and the
engine use.  The individual stages are exported for tests and tooling.
"""

from repro.core.language.analyzer import QueryAnalyzer, analyze_query
from repro.core.language.parser import Parser, parse
from repro.core.language.tokens import Token, TokenType, tokenize
from repro.core.language import ast
from repro.core.language.formatter import format_query


def parse_query(text: str) -> "ast.Query":
    """Parse SAQL query text into a semantically checked query AST.

    Raises:
        SAQLParseError: on a syntax error.
        SAQLSemanticError: on a semantic inconsistency.
    """
    query = parse(text)
    analyze_query(query)
    return query


__all__ = [
    "Parser",
    "QueryAnalyzer",
    "Token",
    "TokenType",
    "analyze_query",
    "ast",
    "format_query",
    "parse",
    "parse_query",
    "tokenize",
]
