"""Recursive-descent parser for the SAQL query language.

The parser consumes the token list produced by
:mod:`repro.core.language.tokens` and builds the AST defined in
:mod:`repro.core.language.ast`.  The accepted grammar covers the four query
classes shown in the paper (rule-based, time-series, invariant-based,
outlier-based); see ``docs`` in the README for the full grammar summary.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from repro.core.errors import SAQLParseError
from repro.core.language import ast
from repro.core.language.tokens import Token, TokenType, tokenize

#: Entity keywords that may start an event pattern.
ENTITY_KEYWORDS = ("proc", "file", "ip")

#: Operation keywords accepted between the subject and object of a pattern.
OPERATION_KEYWORDS = (
    "start", "end", "read", "write", "execute", "delete", "rename",
    "connect", "accept", "send", "recv",
)

#: Window-unit multipliers to seconds.
TIME_UNITS = {
    "ms": 0.001,
    "s": 1.0, "sec": 1.0, "second": 1.0, "seconds": 1.0,
    "min": 60.0, "minute": 60.0, "minutes": 60.0,
    "h": 3600.0, "hour": 3600.0, "hours": 3600.0,
    "day": 86400.0, "days": 86400.0,
}

_COMPARISON_TOKENS = {
    TokenType.GT: ">",
    TokenType.GTE: ">=",
    TokenType.LT: "<",
    TokenType.LTE: "<=",
    TokenType.EQEQ: "==",
    TokenType.EQ: "==",
    TokenType.NEQ: "!=",
}

_SET_OPERATORS = ("union", "diff", "intersect")


class Parser:
    """Parses a token stream into a :class:`repro.core.language.ast.Query`."""

    def __init__(self, tokens: List[Token], source_text: str = ""):
        self._tokens = tokens
        self._pos = 0
        self._source_text = source_text
        self._auto_alias_counter = 0

    # -- token-stream helpers ---------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.type is not TokenType.EOF:
            self._pos += 1
        return token

    def _check(self, token_type: TokenType, value: Optional[str] = None,
               offset: int = 0) -> bool:
        token = self._peek(offset)
        if token.type is not token_type:
            return False
        if value is not None and token.value != value:
            return False
        return True

    def _check_keyword(self, *keywords: str, offset: int = 0) -> bool:
        token = self._peek(offset)
        return token.type is TokenType.IDENT and token.value in keywords

    def _expect(self, token_type: TokenType,
                value: Optional[str] = None) -> Token:
        token = self._peek()
        if not self._check(token_type, value):
            expected = value if value is not None else token_type.value
            raise SAQLParseError(
                f"expected {expected!r} but found {token.value!r}",
                token.line, token.column)
        return self._advance()

    def _expect_keyword(self, keyword: str) -> Token:
        token = self._peek()
        if not self._check_keyword(keyword):
            raise SAQLParseError(
                f"expected keyword {keyword!r} but found {token.value!r}",
                token.line, token.column)
        return self._advance()

    def _error(self, message: str) -> SAQLParseError:
        token = self._peek()
        return SAQLParseError(message, token.line, token.column)

    # -- entry point -------------------------------------------------------

    def parse_query(self) -> ast.Query:
        """Parse a complete SAQL query."""
        query = ast.Query(source_text=self._source_text)

        query.global_constraints = self._parse_global_constraints()
        query.patterns = self._parse_event_patterns()
        if self._check_keyword("with"):
            query.temporal_order = self._parse_temporal_order()
        if self._check_keyword("state"):
            query.state = self._parse_state_block()
        if self._check_keyword("invariant"):
            query.invariant = self._parse_invariant_block()
        if self._check_keyword("cluster") and self._check(
                TokenType.LPAREN, offset=1):
            query.cluster = self._parse_cluster_spec()
        if self._check_keyword("alert"):
            query.alert = self._parse_alert_clause()
        if self._check_keyword("return"):
            query.returns = self._parse_return_clause()

        if not self._check(TokenType.EOF):
            raise self._error(
                f"unexpected token {self._peek().value!r} after query")
        if not query.patterns:
            raise SAQLParseError("query declares no event patterns")
        return query

    # -- clause parsers ----------------------------------------------------

    def _parse_global_constraints(self) -> List[ast.GlobalConstraint]:
        """Parse leading ``attr = value`` lines (e.g. ``agentid = host1``)."""
        constraints: List[ast.GlobalConstraint] = []
        while (self._peek().type is TokenType.IDENT
               and self._peek().value not in ENTITY_KEYWORDS
               and self._peek(1).type in _COMPARISON_TOKENS):
            attr = self._advance().value
            op_token = self._advance()
            op = _COMPARISON_TOKENS[op_token.type]
            value = self._parse_literal_value()
            constraints.append(ast.GlobalConstraint(attr=attr, op=op,
                                                    value=value))
        return constraints

    def _parse_literal_value(self):
        """Parse a constraint value: string, number, or bare identifier."""
        token = self._peek()
        if token.type is TokenType.STRING:
            self._advance()
            return token.value
        if token.type is TokenType.NUMBER:
            self._advance()
            return _number_value(token.value)
        if token.type is TokenType.IDENT:
            self._advance()
            return token.value
        raise self._error(f"expected a literal value, found {token.value!r}")

    def _parse_event_patterns(self) -> List[ast.EventPatternDeclaration]:
        patterns: List[ast.EventPatternDeclaration] = []
        while self._check_keyword(*ENTITY_KEYWORDS):
            patterns.append(self._parse_event_pattern())
        return patterns

    def _parse_event_pattern(self) -> ast.EventPatternDeclaration:
        subject = self._parse_entity_declaration()
        operations = self._parse_operations()
        obj = self._parse_entity_declaration()

        if self._check_keyword("as"):
            self._advance()
            alias = self._expect(TokenType.IDENT).value
        else:
            self._auto_alias_counter += 1
            alias = f"evt{self._auto_alias_counter}"

        window: Optional[ast.WindowSpec] = None
        if self._check(TokenType.HASH):
            window = self._parse_window_spec()

        return ast.EventPatternDeclaration(
            subject=subject,
            operations=tuple(operations),
            object=obj,
            alias=alias,
            window=window,
        )

    def _parse_entity_declaration(self) -> ast.EntityDeclaration:
        token = self._peek()
        if not self._check_keyword(*ENTITY_KEYWORDS):
            raise self._error(
                f"expected an entity keyword (proc/file/ip), found {token.value!r}")
        entity_type = self._advance().value
        variable = self._expect(TokenType.IDENT).value
        constraints: List[ast.AttributeConstraint] = []
        if self._check(TokenType.LBRACKET):
            self._advance()
            if not self._check(TokenType.RBRACKET):
                constraints.append(self._parse_attribute_constraint())
                while self._check(TokenType.COMMA):
                    self._advance()
                    constraints.append(self._parse_attribute_constraint())
            self._expect(TokenType.RBRACKET)
        return ast.EntityDeclaration(
            entity_type=entity_type,
            variable=variable,
            constraints=tuple(constraints),
        )

    def _parse_attribute_constraint(self) -> ast.AttributeConstraint:
        token = self._peek()
        # Shorthand form: a bare string constrains the default attribute.
        if token.type is TokenType.STRING:
            self._advance()
            return ast.AttributeConstraint(attr=None, op="like",
                                           value=token.value)
        if token.type is TokenType.NUMBER:
            self._advance()
            return ast.AttributeConstraint(attr=None, op="==",
                                           value=_number_value(token.value))
        # Full form: attr <op> value.
        attr = self._expect(TokenType.IDENT).value
        op_token = self._peek()
        if op_token.type not in _COMPARISON_TOKENS:
            raise self._error(
                f"expected a comparison operator in constraint, found {op_token.value!r}")
        self._advance()
        op = _COMPARISON_TOKENS[op_token.type]
        value = self._parse_literal_value()
        if op == "==" and isinstance(value, str) and "%" in value:
            op = "like"
        return ast.AttributeConstraint(attr=attr, op=op, value=value)

    def _parse_operations(self) -> List[str]:
        token = self._peek()
        if not self._check_keyword(*OPERATION_KEYWORDS):
            raise self._error(
                f"expected an operation keyword, found {token.value!r}")
        operations = [self._advance().value]
        while self._check(TokenType.OROR):
            self._advance()
            if not self._check_keyword(*OPERATION_KEYWORDS):
                raise self._error(
                    f"expected an operation keyword after '||', found {self._peek().value!r}")
            operations.append(self._advance().value)
        return operations

    def _parse_window_spec(self) -> ast.WindowSpec:
        self._expect(TokenType.HASH)
        kind_token = self._expect(TokenType.IDENT)
        kind = kind_token.value
        if kind not in ("time", "count"):
            raise SAQLParseError(
                f"unknown window kind {kind!r} (expected 'time' or 'count')",
                kind_token.line, kind_token.column)
        self._expect(TokenType.LPAREN)
        length_token = self._expect(TokenType.NUMBER)
        length = _number_value(length_token.value)
        hop: Optional[float] = None
        if kind == "time":
            unit = "s"
            if self._check(TokenType.IDENT):
                unit = self._advance().value
            length = float(length) * _unit_multiplier(unit, length_token)
            if self._check(TokenType.COMMA):
                self._advance()
                hop_token = self._expect(TokenType.NUMBER)
                hop_unit = "s"
                if self._check(TokenType.IDENT):
                    hop_unit = self._advance().value
                hop = (float(_number_value(hop_token.value))
                       * _unit_multiplier(hop_unit, hop_token))
        else:
            length = float(length)
            if self._check(TokenType.COMMA):
                self._advance()
                hop_token = self._expect(TokenType.NUMBER)
                hop = float(_number_value(hop_token.value))
        self._expect(TokenType.RPAREN)
        return ast.WindowSpec(kind=kind, length=float(length), hop=hop)

    def _parse_temporal_order(self) -> ast.TemporalOrder:
        self._expect_keyword("with")
        aliases = [self._expect(TokenType.IDENT).value]
        while self._check(TokenType.ARROW):
            self._advance()
            aliases.append(self._expect(TokenType.IDENT).value)
        if len(aliases) < 2:
            raise self._error("temporal order requires at least two aliases")
        return ast.TemporalOrder(aliases=tuple(aliases))

    def _parse_state_block(self) -> ast.StateBlock:
        self._expect_keyword("state")
        history = 1
        if self._check(TokenType.LBRACKET):
            self._advance()
            history_token = self._expect(TokenType.NUMBER)
            history = int(_number_value(history_token.value))
            if history < 1:
                raise SAQLParseError("state history must be at least 1",
                                     history_token.line, history_token.column)
            self._expect(TokenType.RBRACKET)
        name = self._expect(TokenType.IDENT).value
        self._expect(TokenType.LBRACE)
        definitions: List[ast.StateDefinition] = []
        while not self._check(TokenType.RBRACE):
            def_name = self._expect(TokenType.IDENT).value
            self._expect(TokenType.ASSIGN)
            expr = self._parse_expression()
            definitions.append(ast.StateDefinition(name=def_name, expr=expr))
            if self._check(TokenType.COMMA):
                self._advance()
        self._expect(TokenType.RBRACE)
        if not definitions:
            raise self._error("state block declares no aggregations")

        group_by: List[ast.Expression] = []
        if self._check_keyword("group"):
            self._advance()
            self._expect_keyword("by")
            group_by.append(self._parse_postfix_expression())
            while self._check(TokenType.COMMA):
                self._advance()
                group_by.append(self._parse_postfix_expression())

        return ast.StateBlock(
            name=name,
            history=history,
            definitions=tuple(definitions),
            group_by=tuple(group_by),
        )

    def _parse_invariant_block(self) -> ast.InvariantBlock:
        self._expect_keyword("invariant")
        self._expect(TokenType.LBRACKET)
        training_token = self._expect(TokenType.NUMBER)
        training = int(_number_value(training_token.value))
        if training < 1:
            raise SAQLParseError("invariant training length must be >= 1",
                                 training_token.line, training_token.column)
        self._expect(TokenType.RBRACKET)
        mode = "offline"
        if self._check(TokenType.LBRACKET):
            self._advance()
            mode_token = self._expect(TokenType.IDENT)
            if mode_token.value not in ("offline", "online"):
                raise SAQLParseError(
                    f"unknown invariant mode {mode_token.value!r}",
                    mode_token.line, mode_token.column)
            mode = mode_token.value
            self._expect(TokenType.RBRACKET)

        self._expect(TokenType.LBRACE)
        statements: List[ast.InvariantStatement] = []
        while not self._check(TokenType.RBRACE):
            stmt_name = self._expect(TokenType.IDENT).value
            if self._check(TokenType.ASSIGN):
                self._advance()
                is_init = True
            elif self._check(TokenType.EQ):
                self._advance()
                is_init = False
            else:
                raise self._error(
                    "expected ':=' (init) or '=' (update) in invariant block")
            expr = self._parse_expression()
            statements.append(ast.InvariantStatement(
                name=stmt_name, expr=expr, is_init=is_init))
            if self._check(TokenType.COMMA):
                self._advance()
        self._expect(TokenType.RBRACE)
        if not statements:
            raise self._error("invariant block declares no statements")
        return ast.InvariantBlock(
            training_windows=training, mode=mode,
            statements=tuple(statements))

    def _parse_cluster_spec(self) -> ast.ClusterSpec:
        self._expect_keyword("cluster")
        self._expect(TokenType.LPAREN)
        points: Optional[ast.Expression] = None
        distance = "ed"
        method_text = ""
        while not self._check(TokenType.RPAREN):
            key = self._expect(TokenType.IDENT).value
            self._expect(TokenType.EQ)
            if key == "points":
                points = self._parse_expression()
            elif key == "distance":
                distance = self._expect(TokenType.STRING).value
            elif key == "method":
                method_text = self._expect(TokenType.STRING).value
            else:
                raise self._error(f"unknown cluster parameter {key!r}")
            if self._check(TokenType.COMMA):
                self._advance()
        self._expect(TokenType.RPAREN)
        if points is None:
            raise self._error("cluster statement requires a 'points' parameter")
        method_name, method_args = _parse_method_string(method_text)
        return ast.ClusterSpec(points=points, distance=distance,
                               method=method_name, method_args=method_args)

    def _parse_alert_clause(self) -> ast.AlertClause:
        self._expect_keyword("alert")
        condition = self._parse_expression()
        return ast.AlertClause(condition=condition)

    def _parse_return_clause(self) -> ast.ReturnClause:
        self._expect_keyword("return")
        distinct = False
        if self._check_keyword("distinct"):
            self._advance()
            distinct = True
        items = [self._parse_return_item()]
        while self._check(TokenType.COMMA):
            self._advance()
            items.append(self._parse_return_item())
        return ast.ReturnClause(items=tuple(items), distinct=distinct)

    def _parse_return_item(self) -> ast.ReturnItem:
        expr = self._parse_expression()
        alias: Optional[str] = None
        if self._check_keyword("as"):
            self._advance()
            alias = self._expect(TokenType.IDENT).value
        return ast.ReturnItem(expr=expr, alias=alias)

    # -- expression parsers -------------------------------------------------

    def _parse_expression(self) -> ast.Expression:
        return self._parse_or_expression()

    def _parse_or_expression(self) -> ast.Expression:
        left = self._parse_and_expression()
        while self._check(TokenType.OROR):
            self._advance()
            right = self._parse_and_expression()
            left = ast.BinaryOp(op="||", left=left, right=right)
        return left

    def _parse_and_expression(self) -> ast.Expression:
        left = self._parse_comparison_expression()
        while self._check(TokenType.ANDAND):
            self._advance()
            right = self._parse_comparison_expression()
            left = ast.BinaryOp(op="&&", left=left, right=right)
        return left

    def _parse_comparison_expression(self) -> ast.Expression:
        left = self._parse_set_expression()
        token = self._peek()
        if token.type in _COMPARISON_TOKENS:
            self._advance()
            right = self._parse_set_expression()
            return ast.BinaryOp(op=_COMPARISON_TOKENS[token.type],
                                left=left, right=right)
        if self._check_keyword("in"):
            self._advance()
            right = self._parse_set_expression()
            return ast.BinaryOp(op="in", left=left, right=right)
        return left

    def _parse_set_expression(self) -> ast.Expression:
        left = self._parse_additive_expression()
        while self._check_keyword(*_SET_OPERATORS):
            op = self._advance().value
            right = self._parse_additive_expression()
            left = ast.BinaryOp(op=op, left=left, right=right)
        return left

    def _parse_additive_expression(self) -> ast.Expression:
        left = self._parse_multiplicative_expression()
        while self._check(TokenType.PLUS) or self._check(TokenType.MINUS):
            op = self._advance().value
            right = self._parse_multiplicative_expression()
            left = ast.BinaryOp(op=op, left=left, right=right)
        return left

    def _parse_multiplicative_expression(self) -> ast.Expression:
        left = self._parse_unary_expression()
        while (self._check(TokenType.STAR) or self._check(TokenType.SLASH)
               or self._check(TokenType.PERCENT)):
            op = self._advance().value
            right = self._parse_unary_expression()
            left = ast.BinaryOp(op=op, left=left, right=right)
        return left

    def _parse_unary_expression(self) -> ast.Expression:
        if self._check(TokenType.NOT):
            self._advance()
            return ast.UnaryOp(op="!",
                               operand=self._parse_unary_expression())
        if self._check(TokenType.MINUS):
            self._advance()
            return ast.UnaryOp(op="-",
                               operand=self._parse_unary_expression())
        return self._parse_postfix_expression()

    def _parse_postfix_expression(self) -> ast.Expression:
        expr = self._parse_primary_expression()
        while True:
            if self._check(TokenType.DOT):
                self._advance()
                attr = self._expect(TokenType.IDENT).value
                expr = ast.AttributeRef(base=expr, attr=attr)
            elif self._check(TokenType.LBRACKET):
                self._advance()
                index = self._parse_expression()
                self._expect(TokenType.RBRACKET)
                expr = ast.IndexRef(base=expr, index=index)
            else:
                return expr

    def _parse_primary_expression(self) -> ast.Expression:
        token = self._peek()
        if token.type is TokenType.NUMBER:
            self._advance()
            return ast.Literal(value=_number_value(token.value))
        if token.type is TokenType.STRING:
            self._advance()
            return ast.Literal(value=token.value)
        if token.type is TokenType.LPAREN:
            self._advance()
            expr = self._parse_expression()
            self._expect(TokenType.RPAREN)
            return expr
        if token.type is TokenType.PIPE:
            self._advance()
            operand = self._parse_expression()
            self._expect(TokenType.PIPE)
            return ast.SizeOf(operand=operand)
        if token.type is TokenType.IDENT:
            if token.value == "empty_set":
                self._advance()
                return ast.EmptySet()
            self._advance()
            if self._check(TokenType.LPAREN):
                return self._parse_call(token.value)
            return ast.Identifier(name=token.value)
        raise self._error(f"unexpected token {token.value!r} in expression")

    def _parse_call(self, name: str) -> ast.FuncCall:
        self._expect(TokenType.LPAREN)
        args: List[ast.Expression] = []
        kwargs: List[Tuple[str, ast.Expression]] = []
        while not self._check(TokenType.RPAREN):
            if (self._check(TokenType.IDENT)
                    and self._check(TokenType.EQ, offset=1)):
                key = self._advance().value
                self._advance()  # '='
                kwargs.append((key, self._parse_expression()))
            else:
                args.append(self._parse_expression())
            if self._check(TokenType.COMMA):
                self._advance()
        self._expect(TokenType.RPAREN)
        return ast.FuncCall(name=name, args=tuple(args),
                            kwargs=tuple(kwargs))


def _number_value(text: str):
    """Convert a NUMBER token's text to int or float."""
    if "." in text:
        return float(text)
    return int(text)


def _unit_multiplier(unit: str, token: Token) -> float:
    """Return the seconds-per-unit multiplier for a time-window unit."""
    try:
        return TIME_UNITS[unit.lower()]
    except KeyError:
        raise SAQLParseError(f"unknown time unit {unit!r}",
                             token.line, token.column) from None


_METHOD_PATTERN = re.compile(
    r"^\s*(?P<name>[A-Za-z_][A-Za-z0-9_]*)\s*(?:\((?P<args>[^)]*)\))?\s*$")


def _parse_method_string(text: str) -> Tuple[str, Tuple[float, ...]]:
    """Parse a cluster method string such as ``DBSCAN(100000, 5)``."""
    if not text:
        return "DBSCAN", ()
    match = _METHOD_PATTERN.match(text)
    if match is None:
        raise SAQLParseError(f"malformed cluster method {text!r}")
    name = match.group("name")
    args_text = match.group("args")
    if not args_text:
        return name, ()
    args = []
    for piece in args_text.split(","):
        piece = piece.strip()
        if not piece:
            continue
        try:
            args.append(float(piece))
        except ValueError:
            raise SAQLParseError(
                f"non-numeric cluster method argument {piece!r}") from None
    return name, tuple(args)


def parse(text: str, name: str = "") -> ast.Query:
    """Parse SAQL query text into an (unchecked) query AST."""
    tokens = tokenize(text)
    parser = Parser(tokens, source_text=text)
    query = parser.parse_query()
    query.name = name
    return query
