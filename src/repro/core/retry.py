"""Shared retry/backoff pacing: one implementation for every wait loop.

Grown out of :mod:`repro.core.parallel.supervision` (whose wait loops it
still paces — the names are re-exported there for compatibility), this
module is the single home for backoff in the codebase: the sharded
runtime's liveness probes and result collection, the always-on service's
alert-sink delivery retries, and any future polling loop all share the
same deadline-aware, deterministically-jittered waiter instead of each
growing its own sleep constants.

* :class:`BackoffPolicy` / :class:`Backoff` — a deadline-aware waiter
  with exponential backoff and deterministic jitter.
* :class:`RetryPolicy` — an attempt-bounded retry loop's tunables
  (attempts, per-attempt timeout, inter-attempt backoff), used by the
  service's alert sinks; :meth:`RetryPolicy.delays` yields the jittered
  sleep before each retry.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Iterator, Optional


@dataclass(frozen=True)
class BackoffPolicy:
    """Tunables for one family of wait loops.

    ``initial`` is the first sleep quantum, growing by ``factor`` up to
    ``maximum``; ``jitter`` spreads each quantum by up to +/- that
    fraction so many parents polling the same queues do not phase-lock.
    The jitter stream is seeded per waiter, keeping runs reproducible.
    """

    initial: float = 0.002
    maximum: float = 0.25
    factor: float = 2.0
    jitter: float = 0.25

    def __post_init__(self):
        if self.initial <= 0 or self.maximum < self.initial:
            raise ValueError("backoff needs 0 < initial <= maximum")
        if self.factor < 1.0:
            raise ValueError("backoff factor must be at least 1.0")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("backoff jitter must be in [0, 1)")

    def waiter(self, deadline: Optional[float] = None,
               seed: int = 0) -> "Backoff":
        """Build a fresh waiter; ``deadline`` is seconds from now (None =
        no deadline, the waiter never expires)."""
        return Backoff(self, deadline, seed)


class Backoff:
    """One wait loop's pacing state: deadline tracking plus backoff.

    Use :meth:`interval` to time a blocking ``get(timeout=...)``, or
    :meth:`wait` to sleep in a pure polling loop; call :meth:`reset` when
    the loop observes progress so the next wait starts short again.
    """

    def __init__(self, policy: BackoffPolicy, deadline: Optional[float],
                 seed: int = 0):
        self._policy = policy
        self._deadline = deadline
        self._started = time.monotonic()
        self._interval = policy.initial
        self._random = random.Random(seed)

    @property
    def elapsed(self) -> float:
        """Seconds since the waiter was created or last reset."""
        return time.monotonic() - self._started

    def remaining(self) -> Optional[float]:
        """Seconds until the deadline (None when there is no deadline)."""
        if self._deadline is None:
            return None
        return self._deadline - self.elapsed

    @property
    def expired(self) -> bool:
        """True once the deadline has passed (never, without one)."""
        remaining = self.remaining()
        return remaining is not None and remaining <= 0.0

    def reset(self) -> None:
        """Restart both the deadline clock and the backoff ramp.

        Call on observed progress: the waited-for peer is alive, so the
        deadline should measure silence, not total elapsed time.
        """
        self._started = time.monotonic()
        self._interval = self._policy.initial

    def interval(self) -> float:
        """Return the next wait quantum (jittered, deadline-capped).

        Advances the backoff ramp.  Returns a small positive value even
        at the deadline edge so ``Queue.get(timeout=...)`` callers never
        pass zero; pair with :attr:`expired` to decide when to give up.
        """
        base = self._interval
        self._interval = min(self._interval * self._policy.factor,
                             self._policy.maximum)
        spread = self._policy.jitter * (2.0 * self._random.random() - 1.0)
        quantum = base * (1.0 + spread)
        remaining = self.remaining()
        if remaining is not None:
            quantum = min(quantum, max(remaining, 0.0))
        return max(quantum, 1e-4)

    def wait(self) -> bool:
        """Sleep one backoff quantum; False when the deadline has passed.

        The caller's loop shape is ``while not done: if not waiter.wait():
        raise Timeout``; the sleep never overshoots the deadline.
        """
        if self.expired:
            return False
        time.sleep(self.interval())
        return True


#: The default pacing shared by every wait loop in the sharded runtime.
DEFAULT_BACKOFF = BackoffPolicy()


@dataclass(frozen=True)
class RetryPolicy:
    """Tunables for an attempt-bounded retry loop (alert-sink delivery).

    ``max_attempts`` counts the first try: 3 means one try plus up to two
    retries.  ``timeout`` bounds each individual attempt (passed to the
    transport; ``None`` leaves the transport's own default).  ``backoff``
    paces the sleep between attempts — the first retry waits roughly
    ``backoff.initial`` seconds, growing by ``backoff.factor`` with the
    policy's jitter applied, capped at ``backoff.maximum``.
    """

    max_attempts: int = 5
    timeout: Optional[float] = None
    backoff: BackoffPolicy = field(default_factory=lambda: BackoffPolicy(
        initial=0.05, maximum=2.0, factor=2.0, jitter=0.25))

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("retry policy needs at least one attempt")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError("retry attempt timeout must be positive")

    def delays(self, seed: int = 0) -> Iterator[float]:
        """Yield the jittered sleep before each retry (attempts 2..N).

        Yields ``max_attempts - 1`` values; deterministic under a fixed
        ``seed`` so tests and fault-injection runs reproduce exactly.
        """
        waiter = self.backoff.waiter(seed=seed)
        for _ in range(self.max_attempts - 1):
            yield waiter.interval()


__all__ = [
    "Backoff",
    "BackoffPolicy",
    "DEFAULT_BACKOFF",
    "RetryPolicy",
]
