"""A small k-means implementation used for clustering ablations.

The paper's cluster statement names its method explicitly
(``method="DBSCAN(...)"``); supporting a second method exercises the
method-dispatch path and gives the outlier benchmarks an ablation point.
Outliers under k-means are defined as points whose distance to their
centroid exceeds ``outlier_factor`` times the cluster's mean distance.
"""

from __future__ import annotations

import random
from typing import Any, List, Optional, Sequence

from repro.core.cluster.dbscan import NOISE, ClusterResult
from repro.core.cluster.distance import DistanceFunction, euclidean


class KMeans:
    """Lloyd's algorithm with deterministic seeding.

    Args:
        n_clusters: number of clusters (k).
        max_iterations: iteration cap for Lloyd's loop.
        outlier_factor: points farther than ``outlier_factor`` times their
            cluster's mean point-to-centroid distance are labelled noise.
        seed: PRNG seed for the initial centroid choice.
    """

    def __init__(self, n_clusters: int, max_iterations: int = 50,
                 outlier_factor: float = 3.0, seed: int = 7,
                 distance: DistanceFunction = euclidean):
        if n_clusters < 1:
            raise ValueError("n_clusters must be at least 1")
        self.n_clusters = int(n_clusters)
        self.max_iterations = int(max_iterations)
        self.outlier_factor = float(outlier_factor)
        self.seed = seed
        self.distance = distance

    def fit(self, points: Sequence[Sequence[float]],
            keys: Optional[Sequence[Any]] = None) -> ClusterResult:
        """Cluster ``points``; outliers are labelled :data:`NOISE`."""
        points = [tuple(float(x) for x in point) for point in points]
        count = len(points)
        result_keys = list(keys) if keys is not None else list(range(count))
        if len(result_keys) != count:
            raise ValueError("keys must have the same length as points")
        if count == 0:
            return ClusterResult(points=[], labels=[], keys=[])

        k = min(self.n_clusters, count)
        rng = random.Random(self.seed)
        centroids = [points[i] for i in rng.sample(range(count), k)]
        assignments = [0] * count

        for _ in range(self.max_iterations):
            new_assignments = [self._nearest(centroids, point)
                               for point in points]
            if new_assignments == assignments:
                break
            assignments = new_assignments
            centroids = self._recompute(points, assignments, centroids)

        labels = self._label_outliers(points, assignments, centroids)
        return ClusterResult(points=list(points), labels=labels,
                             keys=result_keys)

    def _nearest(self, centroids: List[Sequence[float]],
                 point: Sequence[float]) -> int:
        distances = [self.distance(point, centroid) for centroid in centroids]
        return distances.index(min(distances))

    def _recompute(self, points: List[Sequence[float]],
                   assignments: List[int],
                   previous: List[Sequence[float]]) -> List[Sequence[float]]:
        dimensions = len(points[0])
        centroids: List[Sequence[float]] = []
        for cluster in range(len(previous)):
            members = [points[i] for i, a in enumerate(assignments)
                       if a == cluster]
            if not members:
                centroids.append(previous[cluster])
                continue
            centroid = tuple(
                sum(member[d] for member in members) / len(members)
                for d in range(dimensions))
            centroids.append(centroid)
        return centroids

    def _label_outliers(self, points: List[Sequence[float]],
                        assignments: List[int],
                        centroids: List[Sequence[float]]) -> List[int]:
        labels = list(assignments)
        for cluster in range(len(centroids)):
            member_indices = [i for i, a in enumerate(assignments)
                              if a == cluster]
            if not member_indices:
                continue
            distances = [self.distance(points[i], centroids[cluster])
                         for i in member_indices]
            mean_distance = sum(distances) / len(distances)
            if mean_distance == 0:
                continue
            threshold = self.outlier_factor * mean_distance
            for index, dist in zip(member_indices, distances):
                if dist > threshold:
                    labels[index] = NOISE
        return labels


def kmeans(points: Sequence[Sequence[float]], n_clusters: int,
           keys: Optional[Sequence[Any]] = None, **kwargs) -> ClusterResult:
    """Convenience function wrapping :class:`KMeans`."""
    return KMeans(n_clusters=n_clusters, **kwargs).fit(points, keys=keys)
