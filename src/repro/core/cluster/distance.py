"""Distance functions for the cluster statement.

The ``distance=`` parameter of a SAQL cluster statement selects one of
these by its short code; the paper uses ``"ed"`` (Euclidean distance).
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Sequence

Vector = Sequence[float]
DistanceFunction = Callable[[Vector, Vector], float]


def euclidean(left: Vector, right: Vector) -> float:
    """Euclidean (L2) distance; the paper's ``"ed"``."""
    _check_dimensions(left, right)
    return math.sqrt(sum((a - b) ** 2 for a, b in zip(left, right)))


def manhattan(left: Vector, right: Vector) -> float:
    """Manhattan (L1) distance."""
    _check_dimensions(left, right)
    return sum(abs(a - b) for a, b in zip(left, right))


def chebyshev(left: Vector, right: Vector) -> float:
    """Chebyshev (L-infinity) distance."""
    _check_dimensions(left, right)
    if not left:
        return 0.0
    return max(abs(a - b) for a, b in zip(left, right))


def cosine(left: Vector, right: Vector) -> float:
    """Cosine distance (1 - cosine similarity)."""
    _check_dimensions(left, right)
    dot = sum(a * b for a, b in zip(left, right))
    norm_left = math.sqrt(sum(a * a for a in left))
    norm_right = math.sqrt(sum(b * b for b in right))
    if norm_left == 0 or norm_right == 0:
        return 1.0
    return 1.0 - dot / (norm_left * norm_right)


def _check_dimensions(left: Vector, right: Vector) -> None:
    if len(left) != len(right):
        raise ValueError(
            f"distance between vectors of different dimensions "
            f"({len(left)} vs {len(right)})")


#: Registry keyed by the codes accepted in ``distance="..."``.
DISTANCE_FUNCTIONS: Dict[str, DistanceFunction] = {
    "ed": euclidean,
    "euclidean": euclidean,
    "l2": euclidean,
    "md": manhattan,
    "manhattan": manhattan,
    "l1": manhattan,
    "chebyshev": chebyshev,
    "linf": chebyshev,
    "cosine": cosine,
}


def get_distance(code: str) -> DistanceFunction:
    """Return the distance function for a ``distance=`` code.

    Raises:
        ValueError: if the code is not recognised.
    """
    func = DISTANCE_FUNCTIONS.get(code.lower())
    if func is None:
        raise ValueError(f"unknown distance code {code!r}")
    return func
