"""DBSCAN clustering, implemented from scratch.

Query 4 of the paper clusters per-destination-IP transfer amounts with
``DBSCAN(100000, 5)`` — ``eps`` of 100000 bytes and ``min_pts`` of 5 — and
alerts on points labelled as outliers (noise).  This module provides the
standard density-based algorithm over an arbitrary distance function.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.core.cluster.distance import DistanceFunction, euclidean

#: Label used for noise points (outliers).
NOISE = -1


@dataclass
class ClusterResult:
    """Outcome of a clustering run over a list of points.

    ``labels[i]`` is the cluster id of ``points[i]`` or :data:`NOISE`.
    ``keys`` carries the caller's identifier for each point (e.g. the
    group-by key of the window state that produced it), so the engine can
    look up whether a particular group is an outlier.
    """

    points: List[Sequence[float]]
    labels: List[int]
    keys: List[Any] = field(default_factory=list)

    @property
    def n_clusters(self) -> int:
        """Number of clusters found (excluding noise)."""
        return len({label for label in self.labels if label != NOISE})

    @property
    def outlier_indices(self) -> List[int]:
        """Indices of points labelled as noise."""
        return [i for i, label in enumerate(self.labels) if label == NOISE]

    def is_outlier(self, key: Any) -> bool:
        """Return True when the point registered under ``key`` is noise."""
        for index, point_key in enumerate(self.keys):
            if point_key == key:
                return self.labels[index] == NOISE
        return False

    def label_of(self, key: Any) -> Optional[int]:
        """Return the cluster label of ``key`` (None when unknown)."""
        for index, point_key in enumerate(self.keys):
            if point_key == key:
                return self.labels[index]
        return None


class DBSCAN:
    """Density-based spatial clustering of applications with noise.

    Args:
        eps: neighbourhood radius.
        min_pts: minimum number of points (including the point itself)
            required in an eps-neighbourhood for a point to be a core point.
        distance: distance function over point vectors.
    """

    def __init__(self, eps: float, min_pts: int,
                 distance: DistanceFunction = euclidean):
        if eps <= 0:
            raise ValueError("eps must be positive")
        if min_pts < 1:
            raise ValueError("min_pts must be at least 1")
        self.eps = float(eps)
        self.min_pts = int(min_pts)
        self.distance = distance

    def fit(self, points: Sequence[Sequence[float]],
            keys: Optional[Sequence[Any]] = None) -> ClusterResult:
        """Cluster ``points`` and return a :class:`ClusterResult`.

        The classic algorithm: every unvisited point gets its
        eps-neighbourhood computed; core points seed clusters that are
        grown by expanding the neighbourhoods of their core members;
        points that end up in no cluster are labelled noise.
        """
        points = [tuple(float(x) for x in point) for point in points]
        count = len(points)
        labels = [None] * count  # type: List[Optional[int]]
        cluster_id = 0

        for index in range(count):
            if labels[index] is not None:
                continue
            neighbours = self._region_query(points, index)
            if len(neighbours) < self.min_pts:
                labels[index] = NOISE
                continue
            labels[index] = cluster_id
            self._expand_cluster(points, labels, neighbours, cluster_id)
            cluster_id += 1

        final_labels = [NOISE if label is None else label for label in labels]
        result_keys = list(keys) if keys is not None else list(range(count))
        if len(result_keys) != count:
            raise ValueError("keys must have the same length as points")
        return ClusterResult(points=list(points), labels=final_labels,
                             keys=result_keys)

    def _region_query(self, points: List[Sequence[float]],
                      index: int) -> List[int]:
        center = points[index]
        return [other for other, point in enumerate(points)
                if self.distance(center, point) <= self.eps]

    def _expand_cluster(self, points: List[Sequence[float]],
                        labels: List[Optional[int]],
                        seeds: List[int], cluster_id: int) -> None:
        queue = list(seeds)
        position = 0
        while position < len(queue):
            neighbour = queue[position]
            position += 1
            label = labels[neighbour]
            if label == NOISE:
                labels[neighbour] = cluster_id
                continue
            if label is not None:
                continue
            labels[neighbour] = cluster_id
            neighbour_region = self._region_query(points, neighbour)
            if len(neighbour_region) >= self.min_pts:
                queue.extend(neighbour_region)


def dbscan(points: Sequence[Sequence[float]], eps: float, min_pts: int,
           distance: DistanceFunction = euclidean,
           keys: Optional[Sequence[Any]] = None) -> ClusterResult:
    """Convenience function wrapping :class:`DBSCAN`."""
    return DBSCAN(eps=eps, min_pts=min_pts, distance=distance).fit(
        points, keys=keys)
