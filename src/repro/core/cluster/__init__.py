"""Clustering support for outlier-based anomaly models.

The paper's Query 4 identifies outliers with DBSCAN over Euclidean
distance.  This package implements DBSCAN (and a small k-means used for
ablations) from scratch, plus the distance functions the ``distance=``
cluster parameter can select.
"""

from repro.core.cluster.distance import DISTANCE_FUNCTIONS, get_distance
from repro.core.cluster.dbscan import DBSCAN, ClusterResult, dbscan
from repro.core.cluster.kmeans import KMeans, kmeans

__all__ = [
    "DBSCAN",
    "DISTANCE_FUNCTIONS",
    "ClusterResult",
    "KMeans",
    "dbscan",
    "get_distance",
    "kmeans",
]
