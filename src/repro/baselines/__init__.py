"""Comparison baselines.

Section I of the paper argues that existing stream systems (Siddhi, Esper,
Flink, ...) (a) lack explicit constructs for anomaly models and (b) keep a
copy of the stream per concurrent query.  Two baselines reproduce those
points of comparison:

* :class:`CopyPerQueryExecutor` — executes the same SAQL queries but with
  one stream copy per query and no master/dependent result sharing
  (benchmark E4 measures the cost of that);
* :mod:`repro.baselines.generic_cep` — a small general-purpose CEP-style
  engine (filters + windowed aggregates) used to show how much
  hand-written glue the advanced anomaly models need without SAQL's
  constructs (benchmark E7).
"""

from repro.baselines.copy_per_query import CopyPerQueryExecutor, CopyPerQueryStats
from repro.baselines.generic_cep import (
    FilterQuery,
    GenericCEPEngine,
    WindowedAggregateQuery,
)

__all__ = [
    "CopyPerQueryExecutor",
    "CopyPerQueryStats",
    "FilterQuery",
    "GenericCEPEngine",
    "WindowedAggregateQuery",
]
