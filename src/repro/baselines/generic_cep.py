"""A small general-purpose CEP-style engine (Siddhi/Esper stand-in).

The paper positions SAQL against general-purpose stream/CEP systems whose
query languages offer filters, windows and aggregates but no constructs for
the anomaly models SAQL targets (window-state history, invariant learning,
clustering-based peer comparison).  This module implements that level of
expressiveness — event filters and per-window grouped aggregates over
callback-defined keys — so benchmark E7 can compare:

* how much *user code* it takes to emulate each SAQL anomaly model on top
  of such an engine (the anomaly logic must live outside the engine), and
* the execution cost without the master-dependent-query sharing scheme
  (each registered query processes its own view of the stream).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

from repro.events.event import Event

EventPredicate = Callable[[Event], bool]
KeyFunction = Callable[[Event], Any]
ValueFunction = Callable[[Event], float]


@dataclass
class FilterQuery:
    """A stateless filter: emit every event satisfying the predicate."""

    name: str
    predicate: EventPredicate
    matches: List[Event] = field(default_factory=list)

    def process(self, event: Event) -> Optional[Event]:
        """Return the event when it passes the filter."""
        if self.predicate(event):
            self.matches.append(event)
            return event
        return None


@dataclass
class WindowResult:
    """One closed window's grouped aggregate values."""

    query_name: str
    window_start: float
    window_end: float
    values: Dict[Any, float]


class WindowedAggregateQuery:
    """Tumbling-window grouped aggregation (sum/avg/count) over a filter.

    This is the expressiveness ceiling of the baseline: one window of
    state, no window history, no invariant learning, no clustering.  The
    anomaly decision has to be made by user code consuming the
    :class:`WindowResult` stream.
    """

    def __init__(self, name: str, predicate: EventPredicate,
                 key: KeyFunction, value: ValueFunction,
                 window_seconds: float, aggregate: str = "sum"):
        if window_seconds <= 0:
            raise ValueError("window_seconds must be positive")
        if aggregate not in ("sum", "avg", "count"):
            raise ValueError("aggregate must be sum, avg or count")
        self.name = name
        self.predicate = predicate
        self.key = key
        self.value = value
        self.window_seconds = float(window_seconds)
        self.aggregate = aggregate
        self._current_index: Optional[int] = None
        self._sums: Dict[Any, float] = {}
        self._counts: Dict[Any, int] = {}
        self.results: List[WindowResult] = []

    def process(self, event: Event) -> Optional[WindowResult]:
        """Feed one event; returns a window result when a window closes."""
        window_index = int(math.floor(event.timestamp / self.window_seconds))
        closed: Optional[WindowResult] = None
        if self._current_index is None:
            self._current_index = window_index
        elif window_index > self._current_index:
            closed = self._close()
            self._current_index = window_index
        if self.predicate(event):
            key = self.key(event)
            self._sums[key] = self._sums.get(key, 0.0) + self.value(event)
            self._counts[key] = self._counts.get(key, 0) + 1
        return closed

    def flush(self) -> Optional[WindowResult]:
        """Close the currently open window (end of stream)."""
        if self._current_index is None or not self._sums:
            return None
        return self._close()

    def _close(self) -> WindowResult:
        assert self._current_index is not None
        values: Dict[Any, float] = {}
        for key, total in self._sums.items():
            if self.aggregate == "sum":
                values[key] = total
            elif self.aggregate == "count":
                values[key] = float(self._counts[key])
            else:
                values[key] = total / max(self._counts[key], 1)
        result = WindowResult(
            query_name=self.name,
            window_start=self._current_index * self.window_seconds,
            window_end=(self._current_index + 1) * self.window_seconds,
            values=values,
        )
        self.results.append(result)
        self._sums = {}
        self._counts = {}
        return result


class GenericCEPEngine:
    """Runs a set of filter and windowed-aggregate queries over a stream.

    Every registered query receives every event (no shared matching, no
    shared buffering), which is the copy-per-query execution model the
    paper attributes to general-purpose systems.
    """

    def __init__(self) -> None:
        self._filters: List[FilterQuery] = []
        self._aggregates: List[WindowedAggregateQuery] = []
        self.events_processed = 0
        self.events_delivered = 0

    def add_filter(self, query: FilterQuery) -> FilterQuery:
        """Register a filter query."""
        self._filters.append(query)
        return query

    def add_aggregate(self, query: WindowedAggregateQuery
                      ) -> WindowedAggregateQuery:
        """Register a windowed aggregate query."""
        self._aggregates.append(query)
        return query

    @property
    def query_count(self) -> int:
        """Return the number of registered queries."""
        return len(self._filters) + len(self._aggregates)

    def process_event(self, event: Event) -> List[WindowResult]:
        """Deliver one event to every registered query."""
        self.events_processed += 1
        self.events_delivered += self.query_count
        closed: List[WindowResult] = []
        for filter_query in self._filters:
            filter_query.process(event)
        for aggregate in self._aggregates:
            result = aggregate.process(event)
            if result is not None:
                closed.append(result)
        return closed

    def execute(self, stream: Iterable[Event]) -> List[WindowResult]:
        """Run over a finite stream, flushing open windows at the end."""
        results: List[WindowResult] = []
        for event in stream:
            results.extend(self.process_event(event))
        for aggregate in self._aggregates:
            final = aggregate.flush()
            if final is not None:
                results.append(final)
        return results
