"""The copy-per-query execution baseline.

General-purpose stream engines give every registered query its own view
(and buffer) of the stream; with *n* concurrent queries over the same
monitoring feed this keeps *n* copies of the data and evaluates every
query's patterns independently.  This baseline reproduces that execution
model with the same SAQL queries and the same per-query engine, so the only
difference to :class:`~repro.core.scheduler.concurrent.ConcurrentQueryScheduler`
is the absence of the master-dependent-query sharing scheme — exactly the
ablation benchmark E4 needs.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterable, List, Optional, Union

from repro.core.engine.alerts import Alert, AlertSink
from repro.core.engine.error_reporter import ErrorReporter
from repro.core.engine.query_engine import QueryEngine
from repro.core.language import ast, parse_query
from repro.events.event import Event

#: Default retention (seconds) of each query's private buffer when the query
#: declares no window (kept identical to the shared scheduler's default).
DEFAULT_BUFFER_SECONDS = 600.0


@dataclass
class CopyPerQueryStats:
    """Accounting mirroring :class:`~repro.core.scheduler.concurrent.SchedulerStats`."""

    events_ingested: int = 0
    queries: int = 0
    alerts: int = 0
    pattern_evaluations: int = 0
    buffered_events: int = 0
    peak_buffered_events: int = 0

    @property
    def data_copies(self) -> int:
        """Stream copies kept: one per query (no sharing)."""
        return self.queries


class CopyPerQueryExecutor:
    """Executes each query independently with its own stream copy."""

    def __init__(self, sink: Optional[AlertSink] = None,
                 error_reporter: Optional[ErrorReporter] = None):
        self._sink = sink
        self._error_reporter = error_reporter or ErrorReporter()
        self._engines: List[QueryEngine] = []
        self._buffers: List[Deque[Event]] = []
        self._buffer_seconds: List[float] = []
        self.stats = CopyPerQueryStats()

    def add_query(self, query: Union[str, ast.Query],
                  name: Optional[str] = None) -> QueryEngine:
        """Register one query with its own engine and private buffer."""
        if isinstance(query, str):
            query = parse_query(query)
        engine = QueryEngine(query, name=name, sink=self._sink,
                             error_reporter=self._error_reporter)
        self._engines.append(engine)
        self._buffers.append(deque())
        window = query.window
        retention = DEFAULT_BUFFER_SECONDS
        if window is not None and window.kind == "time":
            retention = max(window.length, window.effective_hop)
        self._buffer_seconds.append(retention)
        self.stats.queries = len(self._engines)
        return engine

    def add_queries(self, queries: Iterable[Union[str, ast.Query]]) -> None:
        """Register several queries at once."""
        for query in queries:
            self.add_query(query)

    @property
    def engines(self) -> List[QueryEngine]:
        """Return the registered engines."""
        return list(self._engines)

    @property
    def error_reporter(self) -> ErrorReporter:
        """Return the shared error reporter."""
        return self._error_reporter

    # -- execution ----------------------------------------------------------------

    def process_event(self, event: Event) -> List[Alert]:
        """Deliver one event to every query's private copy of the stream."""
        self.stats.events_ingested += 1
        alerts: List[Alert] = []
        for index, engine in enumerate(self._engines):
            matcher = engine.matcher.pattern_matcher
            if not matcher.passes_global_constraints(event):
                continue
            self._retain(index, event)
            matches = []
            for pattern in engine.query.patterns:
                self.stats.pattern_evaluations += 1
                match = matcher.match_pattern(event, pattern)
                if match is not None:
                    matches.append(match)
            alerts.extend(engine.process_matches(event, matches))
        buffered = sum(len(buffer) for buffer in self._buffers)
        self.stats.buffered_events = buffered
        self.stats.peak_buffered_events = max(
            self.stats.peak_buffered_events, buffered)
        self.stats.alerts += len(alerts)
        return alerts

    def _retain(self, index: int, event: Event) -> None:
        buffer = self._buffers[index]
        buffer.append(event)
        cutoff = event.timestamp - self._buffer_seconds[index]
        while buffer and buffer[0].timestamp < cutoff:
            buffer.popleft()

    def finish(self) -> List[Alert]:
        """Flush every engine at end of stream."""
        alerts: List[Alert] = []
        for engine in self._engines:
            alerts.extend(engine.finish())
        self.stats.alerts += len(alerts)
        return alerts

    def execute(self, stream: Iterable[Event]) -> List[Alert]:
        """Run all registered queries over a finite stream."""
        alerts: List[Alert] = []
        for event in stream:
            alerts.extend(self.process_event(event))
        alerts.extend(self.finish())
        return alerts
