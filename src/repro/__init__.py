"""SAQL reproduction: querying streaming system monitoring data for
enterprise system anomaly detection (ICDE 2020 demo paper).

The top-level package re-exports the most common entry points; see the
README for the architecture overview and the subpackage docstrings for
details:

* :mod:`repro.events` — the system monitoring data model;
* :mod:`repro.core` — the SAQL language, engine, and scheduler;
* :mod:`repro.collection` — the simulated enterprise / data-collection agents;
* :mod:`repro.attack` — the 5-step APT attack scenario;
* :mod:`repro.storage` — the event database and stream replayer;
* :mod:`repro.queries` — the 8 demo queries from the paper;
* :mod:`repro.baselines` — comparison baselines;
* :mod:`repro.ui` — the command-line UI.
"""

from repro.core import (
    Alert,
    ConcurrentQueryScheduler,
    QueryEngine,
    SAQLError,
    SAQLExecutionError,
    SAQLParseError,
    SAQLSemanticError,
    parse_query,
)
from repro.events import Event, EventStream, ListStream, MergedStream

__version__ = "1.0.0"

__all__ = [
    "Alert",
    "ConcurrentQueryScheduler",
    "Event",
    "EventStream",
    "ListStream",
    "MergedStream",
    "QueryEngine",
    "SAQLError",
    "SAQLExecutionError",
    "SAQLParseError",
    "SAQLSemanticError",
    "parse_query",
    "__version__",
]
