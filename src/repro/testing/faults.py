"""Deterministic fault injection for the sharded runtime.

The supervision work (shard supervisor, query quarantine, checksummed
checkpoints) needs faults that are *reproducible*: a test or benchmark
must kill the same shard after the same event count on every run, or its
oracle comparison is meaningless.  This module provides that as data —
a :class:`FaultPlan` of frozen :class:`FaultSpec` entries that travels
with the scheduler configuration (picklable, so it crosses the process
backend's spawn boundary) and fires inside the target lane's scheduler
at an exact point in its event stream.

Supported fault kinds:

* ``"crash"`` — raise :class:`InjectedCrash` out of ``process_events``
  (a poison batch; surfaces as an in-process lane error or a worker
  ``done``-with-error tuple).
* ``"kill"`` — ``SIGKILL`` the worker process from inside (process
  backend; mirrors an OOM kill).  In-process lanes cannot survive
  killing the interpreter, so there it degrades to a crash.
* ``"hang"`` — block ``process_events`` for ``duration`` seconds once
  (a wedged batch; trips the supervisor's probe/feed deadlines when the
  duration exceeds them).
* ``"query-error"`` — make one registered query's evaluation raise on
  every batch (exercises the quarantine circuit-breaker rather than the
  shard supervisor).

Checkpoint damage is a separate axis: :func:`truncate_checkpoint` and
:func:`corrupt_checkpoint` vandalize stored checkpoint files so recovery
tests can prove the store's checksum verification falls back to the
previous snapshot.

Faults fire once per plan installation by default; a supervised restart
builds a *new* lane scheduler, which re-installs the plan only when
``rearm_on_restart`` is set (that is how tests exhaust the recovery
budget on purpose).
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Tuple, Union

FAULT_KINDS = ("crash", "kill", "hang", "query-error")


class InjectedCrash(RuntimeError):
    """The exception an injected ``"crash"`` fault raises."""


@dataclass(frozen=True)
class FaultSpec:
    """One injected fault, pinned to a shard and a stream position.

    ``shard`` of ``None`` targets every lane the plan is installed into;
    ``after_events`` counts events the target lane has processed before
    the fault fires (0 = first batch).  ``query``/``duration`` qualify
    the ``query-error``/``hang`` kinds.
    """

    kind: str
    shard: Optional[int] = None
    after_events: int = 0
    duration: float = 0.0
    query: Optional[str] = None

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; "
                             f"expected one of {FAULT_KINDS}")
        if self.after_events < 0:
            raise ValueError("after_events must be non-negative")
        if self.kind == "hang" and self.duration <= 0:
            raise ValueError("a hang fault needs a positive duration")
        if self.kind == "query-error" and not self.query:
            raise ValueError("a query-error fault names the query it "
                             "poisons")

    def describe(self) -> str:
        where = ("every shard" if self.shard is None
                 else f"shard {self.shard}")
        extra = ""
        if self.kind == "hang":
            extra = f" for {self.duration:.1f}s"
        elif self.kind == "query-error":
            extra = f" in query {self.query!r}"
        return f"{self.kind} on {where} after {self.after_events} events{extra}"


class _ArmedFault:
    """One spec's live trigger state inside one lane's scheduler."""

    def __init__(self, spec: FaultSpec):
        self.spec = spec
        self.fired = False

    def due(self, seen_events: int) -> bool:
        return not self.fired and seen_events >= self.spec.after_events


@dataclass(frozen=True)
class FaultPlan:
    """A picklable set of faults, installable into lane schedulers.

    The sharded runtime calls :meth:`install` on every lane it builds
    (``in_worker`` tells the plan whether SIGKILL is survivable: only a
    process-backend worker can be killed without taking the parent
    down).  Installation wraps the scheduler's ``process_events`` so the
    due fault fires after the batch that crosses its event threshold is
    *about to be* processed — deterministically, independent of batch
    boundaries chosen by the parent.
    """

    specs: Tuple[FaultSpec, ...] = ()
    #: Re-install into replacement lanes built by a supervised restart
    #: (used to exhaust the recovery budget on purpose).
    rearm_on_restart: bool = False

    def __init__(self, specs=(), rearm_on_restart: bool = False):
        object.__setattr__(self, "specs", tuple(specs))
        object.__setattr__(self, "rearm_on_restart", bool(rearm_on_restart))

    def for_shard(self, position: int) -> Tuple[FaultSpec, ...]:
        return tuple(spec for spec in self.specs
                     if spec.shard is None or spec.shard == position)

    def install(self, scheduler, position: int,
                in_worker: bool = False) -> None:
        """Arm this plan's faults inside one lane's scheduler."""
        specs = self.for_shard(position)
        if not specs:
            return
        armed = [_ArmedFault(spec) for spec in specs]
        for fault in armed:
            spec = fault.spec
            if spec.kind == "query-error":
                _poison_query(scheduler, spec.query)
                fault.fired = True
        state = {"seen": 0}
        inner = scheduler.process_events

        def injected_process_events(events):
            state["seen"] += len(events)
            for fault in armed:
                if not fault.due(state["seen"]):
                    continue
                fault.fired = True
                _fire(fault.spec, position, in_worker)
            return inner(events)

        scheduler.process_events = injected_process_events

    def describe(self) -> str:
        return "; ".join(spec.describe() for spec in self.specs) or "no-op"


def _fire(spec: FaultSpec, position: int, in_worker: bool) -> None:
    if spec.kind == "kill" and in_worker:
        # Mirror an OOM kill: the worker vanishes without unwinding,
        # flushing queues, or posting its result tuple.
        os.kill(os.getpid(), signal.SIGKILL)
    if spec.kind in ("kill", "crash"):
        # In-process lanes cannot survive killing the interpreter; the
        # kill degrades to a crash the lane reports as its error.
        raise InjectedCrash(
            f"injected {spec.kind} on shard {position} after "
            f"{spec.after_events} events")
    if spec.kind == "hang":
        time.sleep(spec.duration)


def _poison_query(scheduler, query_name: str) -> None:
    """Make one registered query's batch evaluation raise every time.

    Wraps the engine's ``process_match_batch`` — the per-engine hook the
    quarantine-guarded dispatch attributes failures through — so the
    circuit-breaker sees a fatal error per batch and trips once the
    budget is spent, while sibling queries keep alerting.
    """
    for engine in getattr(scheduler, "engines", []):
        if engine.name == query_name:
            def raiser(*_args, **_kwargs):
                raise InjectedCrash(
                    f"injected query-error in {query_name!r}")
            engine.process_match_batch = raiser
            return
    raise ValueError(f"fault plan targets unknown query {query_name!r}")


def parse_fault_spec(text: str) -> FaultSpec:
    """Parse a CLI fault spec: ``kind[:key=value,...]``.

    Examples: ``kill:shard=1,after=5000``, ``hang:shard=0,after=100,
    duration=30``, ``query-error:query=exfil``, ``crash``.
    """
    kind, _, rest = text.partition(":")
    kind = kind.strip()
    kwargs = {}
    if rest.strip():
        for pair in rest.split(","):
            key, eq, value = pair.partition("=")
            key = key.strip()
            if not eq:
                raise ValueError(f"malformed fault option {pair!r} "
                                 "(expected key=value)")
            value = value.strip()
            if key == "shard":
                kwargs["shard"] = int(value)
            elif key in ("after", "after_events"):
                kwargs["after_events"] = int(value)
            elif key == "duration":
                kwargs["duration"] = float(value)
            elif key == "query":
                kwargs["query"] = value
            else:
                raise ValueError(f"unknown fault option {key!r}")
    return FaultSpec(kind=kind, **kwargs)


# -- checkpoint vandalism ----------------------------------------------------

def truncate_checkpoint(path: Union[str, Path],
                        keep_bytes: int = 64) -> None:
    """Truncate a stored checkpoint file (simulates a torn write that
    bypassed the atomic rename, e.g. a copied backup)."""
    with open(path, "r+b") as handle:
        handle.truncate(keep_bytes)


def tear_journal_tail(path: Union[str, Path],
                      cut_bytes: int = 17) -> int:
    """Cut the last ``cut_bytes`` off a JSONL journal/segment file
    (simulates a crash mid-append: the final record has no terminating
    newline or is mid-JSON).  Returns the resulting file size."""
    path = Path(path)
    size = path.stat().st_size
    kept = max(0, size - cut_bytes)
    with open(path, "r+b") as handle:
        handle.truncate(kept)
    return kept


def corrupt_checkpoint(path: Union[str, Path]) -> None:
    """Flip stored snapshot content without breaking its JSON syntax,
    so only checksum verification can catch the damage."""
    raw = Path(path).read_text(encoding="utf-8")
    for digit in "0123456789":
        flipped = str((int(digit) + 1) % 10)
        candidate = raw.replace(f": {digit}", f": {flipped}", 1)
        if candidate == raw:
            candidate = raw.replace(f":{digit}", f":{flipped}", 1)
        if candidate != raw:
            Path(path).write_text(candidate, encoding="utf-8")
            return
    raise ValueError(f"could not find a digit to corrupt in {path}")
