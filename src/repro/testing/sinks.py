"""Deterministic sink-fault helpers for tests, benchmarks and CI smoke.

:class:`FlakySinkTransport` plugs into
:class:`repro.service.sinks.WebhookSink` (its ``transport`` parameter)
and fails a configurable number of attempts per distinct payload before
succeeding — exercising the dispatcher's retry/backoff path without a
network.  :class:`FailingSink` is the always-broken end of the spectrum
for dead-letter tests.
"""

from __future__ import annotations

import json
import threading
from typing import Any, Dict, List, Optional

from repro.core.engine.alerts import Alert, AlertSink


class FlakySinkTransport:
    """A webhook transport failing the first N attempts per payload.

    ``fail_first`` attempts of each distinct payload raise; subsequent
    attempts succeed and record the decoded payload in ``delivered``
    (delivery order preserved).  Thread-safe, so it can be shared
    between a dispatcher thread and test assertions.
    """

    def __init__(self, fail_first: int = 2,
                 error: Optional[Exception] = None):
        if fail_first < 0:
            raise ValueError("fail_first must be non-negative")
        self.fail_first = fail_first
        self._error = error
        self._attempts: Dict[bytes, int] = {}
        self.delivered: List[Dict[str, Any]] = []
        self._lock = threading.Lock()

    @property
    def attempts(self) -> int:
        with self._lock:
            return sum(self._attempts.values())

    def __call__(self, url: str, payload: bytes,
                 timeout: Optional[float]) -> None:
        with self._lock:
            seen = self._attempts.get(payload, 0)
            self._attempts[payload] = seen + 1
            if seen < self.fail_first:
                raise (self._error if self._error is not None
                       else ConnectionError(
                           f"injected failure {seen + 1}/{self.fail_first} "
                           f"for {url}"))
            self.delivered.append(json.loads(payload.decode("utf-8")))


class FailingSink(AlertSink):
    """An alert sink whose every emit raises (dead-letter path tests)."""

    def __init__(self, name: str = "failing"):
        self._name = name
        self.attempts = 0

    @property
    def name(self) -> str:
        return f"failing:{self._name}"

    def emit(self, alert: Alert) -> None:
        self.attempts += 1
        raise ConnectionError(f"sink {self._name} is down")
