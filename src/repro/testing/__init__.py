"""Test and benchmark support utilities (fault injection)."""

from repro.testing.faults import (
    FAULT_KINDS,
    FaultPlan,
    FaultSpec,
    InjectedCrash,
    corrupt_checkpoint,
    parse_fault_spec,
    truncate_checkpoint,
)

__all__ = [
    "FAULT_KINDS",
    "FaultPlan",
    "FaultSpec",
    "InjectedCrash",
    "corrupt_checkpoint",
    "parse_fault_spec",
    "truncate_checkpoint",
]
