"""Test and benchmark support utilities (fault injection)."""

from repro.testing.faults import (
    FAULT_KINDS,
    FaultPlan,
    FaultSpec,
    InjectedCrash,
    corrupt_checkpoint,
    parse_fault_spec,
    tear_journal_tail,
    truncate_checkpoint,
)
from repro.testing.sinks import FailingSink, FlakySinkTransport

__all__ = [
    "FAULT_KINDS",
    "FailingSink",
    "FaultPlan",
    "FaultSpec",
    "FlakySinkTransport",
    "InjectedCrash",
    "corrupt_checkpoint",
    "parse_fault_spec",
    "tear_journal_tail",
    "truncate_checkpoint",
]
